//! Pre-decoded, flat instruction form for the block executor.
//!
//! [`DecodedProgram::build`] translates every method's `Vec<Insn>` into a
//! dense stream of fixed-width [`DOp`]s once, at VM construction: operand
//! indices are widened into flat `u32` fields, branch targets stay
//! pre-resolved instruction indices, and per-callee facts that would
//! otherwise need a method-table lookup at execution time (is the static
//! callee synchronized?) are folded into flag bits. Primary and backup
//! decode the same program, so the decoded stream is identical on both
//! replicas and the paper's `(br_cnt, pc_off)` progress points address it
//! directly — a decoded pc is the same instruction index as a bytecode pc.
//!
//! The flags also pre-classify each op for the segment executor
//! ([`crate::exec::Vm::run_slice`]'s hot path): *breaker* ops (monitor
//! operations, native invocations, throws, synchronized static calls) must
//! run through the legacy one-unit path with their own coordinator
//! consult, everything else can execute inside a straight-line segment.

use crate::bytecode::{Cmp, Insn};
use crate::class::Program;

/// Dense operation code, one per [`Insn`] variant, plus the fused
/// superinstructions (`F*`) that exist only in the fused stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub(crate) enum OpCode {
    Nop,
    ConstI,
    ConstD,
    ConstNull,
    ConstStr,
    Dup,
    DupX1,
    Pop,
    Swap,
    Load,
    Store,
    Inc,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Neg,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    DAdd,
    DSub,
    DMul,
    DDiv,
    I2D,
    D2I,
    ICmp,
    DCmp,
    RefEq,
    Goto,
    If,
    IfNot,
    IfNull,
    InvokeStatic,
    InvokeVirtual,
    InvokeNative,
    Ret,
    RetVal,
    New,
    GetField,
    PutField,
    GetStatic,
    PutStatic,
    ClassObj,
    NewArray,
    ALoad,
    AStore,
    ALen,
    MonitorEnter,
    MonitorExit,
    Throw,
    // ----- fused superinstructions (fused stream only) -----
    // Each `F*` op is the exact composition of its constituent singles:
    // it executes only when the whole composition fits the remaining
    // segment budget (otherwise the executor falls back to the quickened
    // single at the same pc), consumes one unit and one potential
    // control-flow bump *per constituent*, and on a mid-op raise leaves
    // the pc at the raising constituent — so segment accounting, the
    // backup's intra-block unit budgets, and every recorded
    // `(br_cnt, pc_off)` are bit-identical with fusion on or off.
    /// `Load a; IfNot b` — countdown-loop head (`helpers::spin`).
    FLoadIfNot,
    /// `Inc a, imm; Goto b` — loop back-edge.
    FIncGoto,
    /// `ICmp a; If b` — compare-and-branch tail.
    FICmpIf,
    /// `ConstI imm; <arith a>` — constant-operand arithmetic. `Div`/`Rem`
    /// fuse only when `imm != 0`, so the fused form never raises.
    FConstArith,
    /// `Load a; Load b` — two pushes.
    FLoadLoad,
    /// `Load a; Store b` — local-to-local copy.
    FLoadStore,
    /// `Load a; ALoad` — indexed array read (index from a local).
    FLoadALoad,
    /// `Load a; GetField b` — field read through a local reference.
    FLoadGetField,
    /// `GetStatic a, b; Load imm` — static read then local push.
    FGetStaticLoad,
    /// `Load a; ConstI imm; ICmp b` — local-vs-constant comparison
    /// (`helpers::count_loop` head).
    FLoadConstICmp,
    /// `ConstI imm; ICmp a; If b` — constant compare-and-branch.
    FConstICmpIf,
    /// `Load a; Load b; ALoad` — array read with both operands local.
    FLoadLoadALoad,
    /// `Load a; Load b; <arith imm>` — two-local arithmetic (`Div`/`Rem`
    /// excluded: their raise path would need mid-op unwinding).
    FLoadLoadArith,
    /// `Load a.lo; IfNot ->b; Inc a.hi,imm.lo; Goto ->imm.hi` — one whole
    /// `spin`-style wait-loop iteration. Both constituent branches bump
    /// `br_cnt` with their own stop checks, so a backup replay bound can
    /// still halt between them (pc then rests on the interior `Inc`
    /// single).
    FSpin,
    /// `Load a.lo; ConstI imm; ICmp a.hi; If ->b` — a full counted-loop
    /// head test-and-branch.
    FLoadConstICmpIf,
    /// `Store a; Load b` — local store followed by a (possibly same-slot)
    /// local reload.
    FStoreLoad,
    /// `ConstI imm; Store a` — constant into a local, no stack traffic.
    FConstStore,
    /// `Load a.lo; ConstI imm; <arith a.hi>` — local-vs-constant
    /// arithmetic (`Div`/`Rem` fuse only with a nonzero constant).
    FLoadConstArith,
    /// `ICmp a; IfNot ->b` — compare-and-branch on the negation.
    FICmpIfNot,
    /// `ALoad; <arith a>` — array element folded into arithmetic.
    FALoadArith,
    /// `<arith b>; Store a` — arithmetic result straight into a local.
    FArithStore,
    /// `Load a.lo; Load a.hi; ICmp imm; If ->b` — two-local
    /// compare-and-branch (the jack scanner head).
    FLoadLoadICmpIf,
    /// `Load a.lo; ICmp a.hi; IfNot ->b` — local-vs-stack
    /// compare-and-branch on the negation.
    FLoadICmpIfNot,
}

/// The op must execute through the legacy one-unit path (it coordinates
/// with monitors, natives, or exception control flow).
pub(crate) const F_BREAKER: u8 = 1 << 0;
/// `InvokeStatic` whose callee is a synchronized method (implies
/// [`F_BREAKER`]); precomputed so the segment executor never touches the
/// method table for the common non-synchronized call.
pub(crate) const F_SYNC_CALLEE: u8 = 1 << 1;
/// Upper flag bits hold a fused op's constituent count (2–4), so the
/// fast loop's existing single `flags != 0` test also routes fused ops:
/// `flags >> F_FUSE_SHIFT` is 0 for every non-fused op.
pub(crate) const F_FUSE_SHIFT: u8 = 4;

/// `InvokeVirtual.imm` value meaning "no inline-cache site" (the base and
/// `Match` streams; only the fused stream assigns real site ids ≥ 0).
pub(crate) const NO_IC: i64 = -1;

/// One monomorphic inline-cache entry: the receiver class last seen at an
/// `InvokeVirtual` site, with the resolved callee facts the invoke
/// prologue needs (saving the vtable walk and two method-table reads).
/// Never stale — classes and vtables are immutable after program build —
/// and purely host-side: replicas warm their caches independently and a
/// snapshot restore starts cold.
#[derive(Debug, Clone, Copy)]
pub(crate) struct IcEntry {
    /// Cached receiver class (`None` = cold site).
    pub class: Option<crate::bytecode::ClassId>,
    /// Resolved callee for that class.
    pub target: crate::bytecode::MethodId,
    /// Callee is synchronized (must take the legacy breaker path).
    pub sync: bool,
    /// Callee argument count.
    pub n_args: u8,
    /// Callee frame size.
    pub n_locals: u16,
}

impl Default for IcEntry {
    fn default() -> Self {
        IcEntry {
            class: None,
            target: crate::bytecode::MethodId(0),
            sync: false,
            n_args: 0,
            n_locals: 0,
        }
    }
}

/// One decoded instruction: fixed-width, `Copy`, no heap indirection.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DOp {
    /// Operation.
    pub code: OpCode,
    /// Classification flags ([`F_BREAKER`], [`F_SYNC_CALLEE`]).
    pub flags: u8,
    /// First operand: local index, branch target, slot, class id, method
    /// id, vslot, string id, native id, or comparison code.
    pub a: u32,
    /// Second operand: argument count or static slot.
    pub b: u32,
    /// Immediate: integer constant, increment delta, or `f64` bits.
    pub imm: i64,
}

impl DOp {
    /// True if this op must run through the legacy one-unit path.
    #[inline]
    pub fn is_breaker(self) -> bool {
        self.flags & F_BREAKER != 0
    }
}

/// Encodes a [`Cmp`] into a `u32` operand.
fn cmp_code(c: Cmp) -> u32 {
    match c {
        Cmp::Eq => 0,
        Cmp::Ne => 1,
        Cmp::Lt => 2,
        Cmp::Le => 3,
        Cmp::Gt => 4,
        Cmp::Ge => 5,
    }
}

/// Decodes a [`Cmp`] operand written by [`cmp_code`].
#[inline]
pub(crate) fn cmp_of(a: u32) -> Cmp {
    match a {
        0 => Cmp::Eq,
        1 => Cmp::Ne,
        2 => Cmp::Lt,
        3 => Cmp::Le,
        4 => Cmp::Gt,
        _ => Cmp::Ge,
    }
}

/// Decodes one instruction. Also the per-op path of the `Match` dispatch
/// engine, which re-derives the flat form from the original `Insn` on
/// every fetch — deliberately paying the decode + match cost the
/// pre-decoded engine amortizes away.
pub(crate) fn decode_one(insn: Insn, program: &Program) -> DOp {
    let op = |code| DOp { code, flags: 0, a: 0, b: 0, imm: 0 };
    match insn {
        Insn::Nop => op(OpCode::Nop),
        Insn::Const(v) => DOp { imm: v, ..op(OpCode::ConstI) },
        Insn::DConst(v) => DOp { imm: v.to_bits() as i64, ..op(OpCode::ConstD) },
        Insn::ConstNull => op(OpCode::ConstNull),
        Insn::ConstStr(sid) => DOp { a: sid.0, ..op(OpCode::ConstStr) },
        Insn::Dup => op(OpCode::Dup),
        Insn::DupX1 => op(OpCode::DupX1),
        Insn::Pop => op(OpCode::Pop),
        Insn::Swap => op(OpCode::Swap),
        Insn::Load(n) => DOp { a: n as u32, ..op(OpCode::Load) },
        Insn::Store(n) => DOp { a: n as u32, ..op(OpCode::Store) },
        Insn::Inc(n, delta) => DOp { a: n as u32, imm: delta as i64, ..op(OpCode::Inc) },
        Insn::Add => op(OpCode::Add),
        Insn::Sub => op(OpCode::Sub),
        Insn::Mul => op(OpCode::Mul),
        Insn::Div => op(OpCode::Div),
        Insn::Rem => op(OpCode::Rem),
        Insn::Neg => op(OpCode::Neg),
        Insn::And => op(OpCode::And),
        Insn::Or => op(OpCode::Or),
        Insn::Xor => op(OpCode::Xor),
        Insn::Shl => op(OpCode::Shl),
        Insn::Shr => op(OpCode::Shr),
        Insn::DAdd => op(OpCode::DAdd),
        Insn::DSub => op(OpCode::DSub),
        Insn::DMul => op(OpCode::DMul),
        Insn::DDiv => op(OpCode::DDiv),
        Insn::I2D => op(OpCode::I2D),
        Insn::D2I => op(OpCode::D2I),
        Insn::ICmp(c) => DOp { a: cmp_code(c), ..op(OpCode::ICmp) },
        Insn::DCmp(c) => DOp { a: cmp_code(c), ..op(OpCode::DCmp) },
        Insn::RefEq => op(OpCode::RefEq),
        Insn::Goto(target) => DOp { a: target, ..op(OpCode::Goto) },
        Insn::If(target) => DOp { a: target, ..op(OpCode::If) },
        Insn::IfNot(target) => DOp { a: target, ..op(OpCode::IfNot) },
        Insn::IfNull(target) => DOp { a: target, ..op(OpCode::IfNull) },
        Insn::InvokeStatic(mid) => {
            let sync = program.methods[mid.0 as usize].synchronized;
            DOp {
                flags: if sync { F_BREAKER | F_SYNC_CALLEE } else { 0 },
                a: mid.0,
                ..op(OpCode::InvokeStatic)
            }
        }
        Insn::InvokeVirtual(slot, argc) => {
            DOp { a: slot.0 as u32, b: argc as u32, imm: NO_IC, ..op(OpCode::InvokeVirtual) }
        }
        Insn::InvokeNative(nid, argc) => {
            DOp { flags: F_BREAKER, a: nid.0, b: argc as u32, ..op(OpCode::InvokeNative) }
        }
        Insn::Ret => op(OpCode::Ret),
        Insn::RetVal => op(OpCode::RetVal),
        Insn::New(cid) => DOp { a: cid.0 as u32, ..op(OpCode::New) },
        Insn::GetField(slot) => DOp { a: slot as u32, ..op(OpCode::GetField) },
        Insn::PutField(slot) => DOp { a: slot as u32, ..op(OpCode::PutField) },
        Insn::GetStatic(cid, slot) => {
            DOp { a: cid.0 as u32, b: slot as u32, ..op(OpCode::GetStatic) }
        }
        Insn::PutStatic(cid, slot) => {
            DOp { a: cid.0 as u32, b: slot as u32, ..op(OpCode::PutStatic) }
        }
        Insn::ClassObj(cid) => DOp { a: cid.0 as u32, ..op(OpCode::ClassObj) },
        Insn::NewArray => op(OpCode::NewArray),
        Insn::ALoad => op(OpCode::ALoad),
        Insn::AStore => op(OpCode::AStore),
        Insn::ALen => op(OpCode::ALen),
        Insn::MonitorEnter => DOp { flags: F_BREAKER, ..op(OpCode::MonitorEnter) },
        Insn::MonitorExit => DOp { flags: F_BREAKER, ..op(OpCode::MonitorExit) },
        Insn::Throw => DOp { flags: F_BREAKER, ..op(OpCode::Throw) },
    }
}

/// One method in decoded form: three parallel streams over the same pcs.
#[derive(Debug)]
pub(crate) struct DecodedMethod {
    /// The plain decoded stream (`decode_one` verbatim) — what the
    /// `Decoded` engine dispatches. Kept rewrite-free so it stays the
    /// measured pre-fusion baseline.
    pub base: Vec<DOp>,
    /// Quickened singles: same ops with operands rewritten to direct
    /// facts (static-callee frame shape, inline-cache site ids). The
    /// `Fused` engine's fallback stream when a superinstruction does not
    /// fit the remaining segment budget, and the stream executed on any
    /// entry into the middle of a fused region (branch target, snapshot
    /// resume) — those slots are never overlaid.
    pub quick: Vec<DOp>,
    /// The dispatch stream of the `Fused` engine: `quick` with each
    /// fusion-site start slot overlaid by its superinstruction.
    /// Constituent slots keep their quickened singles.
    pub fused: Vec<DOp>,
}

/// The whole program in decoded form, indexed `[method][pc]`.
#[derive(Debug)]
pub(crate) struct DecodedProgram {
    /// Per-method decoded streams, parallel to `Program::methods`.
    pub methods: Vec<DecodedMethod>,
    /// Inline-cache site count (sites are numbered program-wide, in
    /// method-then-pc order, so both replicas agree on the numbering).
    pub n_ic_sites: u32,
    /// Pre-materialized `ConstStr` array contents, parallel to
    /// `Program::strings`: the decode-time form of the string pool, so
    /// the fused engine's allocation path copies values instead of
    /// re-walking UTF-8 per execution.
    pub strings: Vec<Vec<crate::value::Value>>,
}

/// True if `op` may be a fusion constituent: a quiet fast-loop op. Cold
/// ops (allocations, invocations, returns) and breakers (flags != 0)
/// never fuse — fusion must not swallow a potential preemption point or
/// an op that needs `&mut VmCore`.
fn fusible(op: &DOp) -> bool {
    op.flags == 0
        && !matches!(
            op.code,
            OpCode::ConstStr
                | OpCode::New
                | OpCode::NewArray
                | OpCode::InvokeStatic
                | OpCode::InvokeVirtual
                | OpCode::InvokeNative
                | OpCode::Ret
                | OpCode::RetVal
                | OpCode::MonitorEnter
                | OpCode::MonitorExit
                | OpCode::Throw
        )
}

/// Integer arithmetic whose fused form can never raise.
fn quiet_arith(code: OpCode) -> bool {
    matches!(
        code,
        OpCode::Add
            | OpCode::Sub
            | OpCode::Mul
            | OpCode::And
            | OpCode::Or
            | OpCode::Xor
            | OpCode::Shl
            | OpCode::Shr
    )
}

/// Evaluates the arithmetic constituent of a fused op. `sub` is the
/// constituent's [`OpCode`] discriminant (as stored by [`fuse_window`]).
/// `Div`/`Rem` appear only via `FConstArith` with a nonzero constant, so
/// no raise path exists here.
pub(crate) fn fused_arith(sub: u32, a: i64, b: i64) -> i64 {
    const ADD: u32 = OpCode::Add as u32;
    const SUB: u32 = OpCode::Sub as u32;
    const MUL: u32 = OpCode::Mul as u32;
    const AND: u32 = OpCode::And as u32;
    const OR: u32 = OpCode::Or as u32;
    const XOR: u32 = OpCode::Xor as u32;
    const SHL: u32 = OpCode::Shl as u32;
    const SHR: u32 = OpCode::Shr as u32;
    const DIV: u32 = OpCode::Div as u32;
    match sub {
        ADD => a.wrapping_add(b),
        SUB => a.wrapping_sub(b),
        MUL => a.wrapping_mul(b),
        AND => a & b,
        OR => a | b,
        XOR => a ^ b,
        SHL => a.wrapping_shl(b as u32 & 63),
        SHR => a.wrapping_shr(b as u32 & 63),
        DIV => a.wrapping_div(b),
        _ => a.wrapping_rem(b),
    }
}

/// Builds the fused superinstruction for the window starting at `w[0]`,
/// if the window matches a table pattern. Returns the fused op (its
/// constituent count is encoded in the flags).
///
/// The pattern table was chosen from measured frequencies: the
/// `--profile-ops` mode of the interp bench bin ranks executed singles
/// and statically contiguous digrams/trigrams across the six SPEC
/// analogs (see DESIGN.md §8.6 for the recorded counts). Longest match
/// wins: quadgrams are tried before trigrams before digrams at each site.
///
/// `targets[j]` marks `w[j]` as a branch or handler target. A fused op
/// must not cover a target as an *interior* constituent (start slot is
/// fine): execution entering mid-region runs unfused singles, so fusing
/// across a loop head would demote the hottest path in the method —
/// exactly what happened to `helpers::spin` when a preceding `Store+Load`
/// digram swallowed the loop-head `Load`.
fn fuse_window(w: &[DOp], targets: &[bool]) -> Option<DOp> {
    let fused = |code, len: u8, a: u32, b: u32, imm: i64| {
        Some(DOp { code, flags: len << F_FUSE_SHIFT, a, b, imm })
    };
    let clear = |len: usize| targets[1..len].iter().all(|t| !t);
    // Quadgrams first (longest match). Operand packing needs the locals
    // in 16 bits (always true: they come from `VSlot(u16)`) and, for
    // `FSpin`, the increment delta in 32.
    if w.len() >= 4 && w[..4].iter().all(fusible) && clear(4) {
        match (w[0].code, w[1].code, w[2].code, w[3].code) {
            (OpCode::Load, OpCode::IfNot, OpCode::Inc, OpCode::Goto)
                if i32::try_from(w[2].imm).is_ok() =>
            {
                let imm = (i64::from(w[3].a) << 32) | i64::from(w[2].imm as i32 as u32);
                return fused(OpCode::FSpin, 4, w[0].a | (w[2].a << 16), w[1].a, imm);
            }
            (OpCode::Load, OpCode::ConstI, OpCode::ICmp, OpCode::If) => {
                return fused(
                    OpCode::FLoadConstICmpIf,
                    4,
                    w[0].a | (w[2].a << 16),
                    w[3].a,
                    w[1].imm,
                );
            }
            (OpCode::Load, OpCode::Load, OpCode::ICmp, OpCode::If) => {
                return fused(
                    OpCode::FLoadLoadICmpIf,
                    4,
                    w[0].a | (w[1].a << 16),
                    w[3].a,
                    i64::from(w[2].a),
                );
            }
            _ => {}
        }
    }
    // Trigrams next.
    if w.len() >= 3 && w[..3].iter().all(fusible) && clear(3) {
        match (w[0].code, w[1].code, w[2].code) {
            (OpCode::Load, OpCode::ConstI, OpCode::ICmp) => {
                return fused(OpCode::FLoadConstICmp, 3, w[0].a, w[2].a, w[1].imm);
            }
            (OpCode::ConstI, OpCode::ICmp, OpCode::If) => {
                return fused(OpCode::FConstICmpIf, 3, w[1].a, w[2].a, w[0].imm);
            }
            (OpCode::Load, OpCode::Load, OpCode::ALoad) => {
                return fused(OpCode::FLoadLoadALoad, 3, w[0].a, w[1].a, 0);
            }
            (OpCode::Load, OpCode::Load, arith) if quiet_arith(arith) => {
                return fused(OpCode::FLoadLoadArith, 3, w[0].a, w[1].a, arith as u8 as i64);
            }
            (OpCode::Load, OpCode::ConstI, arith) if quiet_arith(arith) => {
                let sub = arith as u8 as u32;
                return fused(OpCode::FLoadConstArith, 3, w[0].a | (sub << 16), 0, w[1].imm);
            }
            (OpCode::Load, OpCode::ConstI, OpCode::Div | OpCode::Rem) if w[1].imm != 0 => {
                let sub = w[2].code as u8 as u32;
                return fused(OpCode::FLoadConstArith, 3, w[0].a | (sub << 16), 0, w[1].imm);
            }
            (OpCode::Load, OpCode::ICmp, OpCode::IfNot) => {
                return fused(OpCode::FLoadICmpIfNot, 3, w[0].a | (w[1].a << 16), w[2].a, 0);
            }
            _ => {}
        }
    }
    if w.len() >= 2 && w[..2].iter().all(fusible) && clear(2) {
        match (w[0].code, w[1].code) {
            (OpCode::Load, OpCode::IfNot) => {
                return fused(OpCode::FLoadIfNot, 2, w[0].a, w[1].a, 0);
            }
            (OpCode::Inc, OpCode::Goto) => {
                return fused(OpCode::FIncGoto, 2, w[0].a, w[1].a, w[0].imm);
            }
            (OpCode::ICmp, OpCode::If) => {
                return fused(OpCode::FICmpIf, 2, w[0].a, w[1].a, 0);
            }
            (OpCode::ICmp, OpCode::IfNot) => {
                return fused(OpCode::FICmpIfNot, 2, w[0].a, w[1].a, 0);
            }
            (OpCode::ALoad, arith) if quiet_arith(arith) => {
                return fused(OpCode::FALoadArith, 2, arith as u8 as u32, 0, 0);
            }
            (arith, OpCode::Store) if quiet_arith(arith) => {
                return fused(OpCode::FArithStore, 2, w[1].a, arith as u8 as u32, 0);
            }
            (OpCode::ConstI, arith) if quiet_arith(arith) => {
                return fused(OpCode::FConstArith, 2, arith as u8 as u32, 0, w[0].imm);
            }
            // Constant divisor/modulus: fusible exactly when nonzero —
            // the division-by-zero raise is decided at decode time
            // (quickening), so the fused op stays raise-free.
            (OpCode::ConstI, OpCode::Div | OpCode::Rem) if w[0].imm != 0 => {
                return fused(OpCode::FConstArith, 2, w[1].code as u8 as u32, 0, w[0].imm);
            }
            (OpCode::Load, OpCode::ALoad) => {
                return fused(OpCode::FLoadALoad, 2, w[0].a, 0, 0);
            }
            (OpCode::Load, OpCode::GetField) => {
                return fused(OpCode::FLoadGetField, 2, w[0].a, w[1].a, 0);
            }
            (OpCode::GetStatic, OpCode::Load) => {
                return fused(OpCode::FGetStaticLoad, 2, w[0].a, w[0].b, w[1].a as i64);
            }
            (OpCode::Load, OpCode::Store) => {
                return fused(OpCode::FLoadStore, 2, w[0].a, w[1].a, 0);
            }
            (OpCode::Load, OpCode::Load) => {
                return fused(OpCode::FLoadLoad, 2, w[0].a, w[1].a, 0);
            }
            (OpCode::Store, OpCode::Load) => {
                return fused(OpCode::FStoreLoad, 2, w[0].a, w[1].a, 0);
            }
            (OpCode::ConstI, OpCode::Store) => {
                return fused(OpCode::FConstStore, 2, w[1].a, 0, w[0].imm);
            }
            _ => {}
        }
    }
    None
}

impl DecodedProgram {
    /// Decodes every method of `program` into the three streams.
    /// Deterministic: both replicas build identical streams (and identical
    /// inline-cache site numbering) from the identical program.
    pub fn build(program: &Program) -> Self {
        let mut n_ic_sites = 0u32;
        let methods = program
            .methods
            .iter()
            .map(|m| {
                let base: Vec<DOp> = m.code.iter().map(|i| decode_one(*i, program)).collect();
                // Quickening: rewrite operands to decode-time facts.
                let quick: Vec<DOp> = base
                    .iter()
                    .map(|op| {
                        let mut q = *op;
                        match q.code {
                            // Non-synchronized static call: fold the
                            // callee's frame shape in, so the invoke path
                            // skips the method-table read.
                            OpCode::InvokeStatic if q.flags == 0 => {
                                let callee = &program.methods[q.a as usize];
                                q.b = u32::from(callee.n_args);
                                q.imm = i64::from(callee.n_locals);
                            }
                            // Virtual call: allocate an inline-cache site.
                            OpCode::InvokeVirtual => {
                                q.imm = i64::from(n_ic_sites);
                                n_ic_sites += 1;
                            }
                            _ => {}
                        }
                        q
                    })
                    .collect();
                // Branch/handler targets: fused ops may start at one but
                // never cover one as an interior constituent.
                let mut is_target = vec![false; base.len()];
                for op in &base {
                    if matches!(op.code, OpCode::Goto | OpCode::If | OpCode::IfNot | OpCode::IfNull)
                    {
                        if let Some(t) = is_target.get_mut(op.a as usize) {
                            *t = true;
                        }
                    }
                }
                for h in &m.handlers {
                    if let Some(t) = is_target.get_mut(h.target as usize) {
                        *t = true;
                    }
                }
                // Fusion: greedy longest-match scan; overlay only the
                // start slot, so every interior pc still holds its
                // quickened single (branch targets and snapshot resumes
                // into the middle of a fused region need no special case).
                let mut fused = quick.clone();
                let mut i = 0;
                while i < quick.len() {
                    match fuse_window(&quick[i..], &is_target[i..]) {
                        Some(op) => {
                            let len = (op.flags >> F_FUSE_SHIFT) as usize;
                            fused[i] = op;
                            i += len;
                        }
                        None => i += 1,
                    }
                }
                DecodedMethod { base, quick, fused }
            })
            .collect();
        let strings = program
            .strings
            .iter()
            .map(|s| s.bytes().map(|b| crate::value::Value::Int(i64::from(b))).collect())
            .collect();
        DecodedProgram { methods, n_ic_sites, strings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn decode_resolves_operands_and_flags() {
        let mut b = ProgramBuilder::new();
        let print = b.import_native("sys.print_int", 1, false);
        let mut helper = b.method("helper", 1);
        helper.load(0).ret_val();
        let helper_id = helper.build(&mut b);
        let mut m = b.method("main", 1);
        m.push_i(41).push_i(1).add().invoke(helper_id).invoke_native(print, 1).ret_void();
        let entry = m.build(&mut b);
        let program = b.build(entry).unwrap();

        let d = DecodedProgram::build(&program);
        assert_eq!(d.methods.len(), program.methods.len());
        let main_ops = &d.methods[entry.0 as usize].base;
        assert_eq!(main_ops.len(), program.method(entry).code.len());
        assert_eq!(main_ops[0].code, OpCode::ConstI);
        assert_eq!(main_ops[0].imm, 41);
        assert_eq!(main_ops[2].code, OpCode::Add);
        let call = main_ops[3];
        assert_eq!(call.code, OpCode::InvokeStatic);
        assert_eq!(call.a, helper_id.0);
        assert!(!call.is_breaker(), "plain static call runs in-segment");
        assert!(main_ops[4].is_breaker(), "native invocation breaks segments");
    }

    #[test]
    fn synchronized_callee_is_flagged_as_breaker() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", crate::class::builtin::OBJECT, 0, 0);
        let mut locked = b.method("locked", 1);
        locked.static_of(cls).synchronized();
        locked.ret_void();
        let locked_id = locked.build(&mut b);
        let mut m = b.method("main", 1);
        m.push_i(0).invoke(locked_id).ret_void();
        let entry = m.build(&mut b);
        let program = b.build(entry).unwrap();

        let d = DecodedProgram::build(&program);
        let call = d.methods[entry.0 as usize].base[1];
        assert_eq!(call.code, OpCode::InvokeStatic);
        assert!(call.flags & F_SYNC_CALLEE != 0);
        assert!(call.is_breaker());
    }

    #[test]
    fn cmp_codes_round_trip() {
        for c in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            assert_eq!(cmp_of(cmp_code(c)), c);
        }
    }

    /// Builds `main` with a `helpers::spin`-shaped countdown loop.
    fn spin_program() -> (crate::class::Program, crate::bytecode::MethodId) {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        let done = m.new_label();
        m.push_i(5).store(1);
        let top = m.bind_new_label();
        m.load(1).if_not(done);
        m.inc(1, -1).goto(top);
        m.bind(done);
        m.ret_void();
        let entry = m.build(&mut b);
        (b.build(entry).unwrap(), entry)
    }

    #[test]
    fn spin_loop_fuses_whole_and_keeps_interior_singles() {
        let (p, entry) = spin_program();
        let dm = &DecodedProgram::build(&p).methods[entry.0 as usize];
        // pc 0-1: `const 5; store 1` digram; pc 2-5: the whole spin body.
        let prologue = dm.fused[0];
        assert_eq!(prologue.code, OpCode::FConstStore);
        assert_eq!(prologue.flags >> F_FUSE_SHIFT, 2);
        let spin = dm.fused[2];
        assert_eq!(spin.code, OpCode::FSpin);
        assert_eq!(spin.flags >> F_FUSE_SHIFT, 4);
        assert_eq!(spin.a & 0xFFFF, 1, "test local");
        assert_eq!(spin.a >> 16, 1, "counter local");
        assert_eq!(spin.b, 6, "exit target");
        assert_eq!(spin.imm >> 32, 2, "back-edge target");
        assert_eq!(spin.imm as i32, -1, "increment delta");
        // Interior slots keep their quickened singles so branch targets,
        // budget fallbacks and snapshot resumes work without rewriting.
        for (pc, code) in [(3, OpCode::IfNot), (4, OpCode::Inc), (5, OpCode::Goto)] {
            assert_eq!(dm.fused[pc].code, code, "interior pc {pc}");
            assert_eq!(dm.fused[pc].flags >> F_FUSE_SHIFT, 0);
        }
        // The base stream stays decode_one verbatim — the Decoded
        // engine's measured pre-fusion floor.
        for (pc, op) in dm.base.iter().enumerate() {
            assert_eq!(op.flags >> F_FUSE_SHIFT, 0, "base pc {pc} must not fuse");
        }
    }

    #[test]
    fn fusion_never_covers_a_branch_target_interior() {
        let (p, entry) = spin_program();
        let dm = &DecodedProgram::build(&p).methods[entry.0 as usize];
        // pc 2 (the loop head `load`) is the back-edge target: the
        // `store 1; load 1` digram at pc 1 must NOT fuse across it, or
        // every loop iteration would enter mid-region and run singles.
        assert_eq!(dm.fused[1].code, OpCode::Store);
        assert_eq!(dm.fused[2].code, OpCode::FSpin, "loop head keeps its fusion");
        // Every fused op in every method respects the rule globally.
        for dm in &DecodedProgram::build(&p).methods {
            let mut targets = vec![false; dm.base.len()];
            for op in &dm.base {
                if matches!(op.code, OpCode::Goto | OpCode::If | OpCode::IfNot | OpCode::IfNull) {
                    targets[op.a as usize] = true;
                }
            }
            for (pc, op) in dm.fused.iter().enumerate() {
                let len = (op.flags >> F_FUSE_SHIFT) as usize;
                for t in targets.iter().enumerate().take(pc + len.max(1)).skip(pc + 1) {
                    assert!(!t.1, "fused op at {pc} covers branch target {}", t.0);
                }
            }
        }
    }

    #[test]
    fn quickening_folds_callee_shape_and_numbers_ic_sites() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", crate::class::builtin::OBJECT, 0, 0);
        let slot = b.declare_vslot("run", 1, true);
        let mut run = b.method("C.run", 1);
        run.instance_of(cls);
        run.push_i(7).ret_val();
        let run_id = run.build(&mut b);
        b.set_vtable(cls, slot, run_id);
        let mut helper = b.method("helper", 2);
        helper.load(0).load(1).add().ret_val();
        let helper_id = helper.build(&mut b);
        let mut m = b.method("main", 1);
        m.push_i(1).push_i(2).invoke(helper_id).pop();
        m.new_obj(cls).invoke_virtual(slot, 1).pop();
        m.new_obj(cls).invoke_virtual(slot, 1).pop();
        m.ret_void();
        let entry = m.build(&mut b);
        let p = b.build(entry).unwrap();

        let d = DecodedProgram::build(&p);
        assert_eq!(d.n_ic_sites, 2, "one site per virtual call, program-wide");
        let dm = &d.methods[entry.0 as usize];
        let callee = &p.methods[helper_id.0 as usize];
        let (mut seen_static, mut sites) = (false, Vec::new());
        for (pc, q) in dm.quick.iter().enumerate() {
            match q.code {
                OpCode::InvokeStatic => {
                    seen_static = true;
                    assert_eq!(q.b, u32::from(callee.n_args));
                    assert_eq!(q.imm, i64::from(callee.n_locals));
                    // Base stream keeps the undecorated operands.
                    assert_eq!(dm.base[pc].b, 0);
                }
                OpCode::InvokeVirtual => {
                    sites.push(q.imm);
                    assert_eq!(dm.base[pc].imm, NO_IC, "base stream has no IC site");
                }
                _ => {}
            }
        }
        assert!(seen_static);
        assert_eq!(sites, vec![0, 1], "sites numbered in method-then-pc order");
    }
}
