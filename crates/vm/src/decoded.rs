//! Pre-decoded, flat instruction form for the block executor.
//!
//! [`DecodedProgram::build`] translates every method's `Vec<Insn>` into a
//! dense stream of fixed-width [`DOp`]s once, at VM construction: operand
//! indices are widened into flat `u32` fields, branch targets stay
//! pre-resolved instruction indices, and per-callee facts that would
//! otherwise need a method-table lookup at execution time (is the static
//! callee synchronized?) are folded into flag bits. Primary and backup
//! decode the same program, so the decoded stream is identical on both
//! replicas and the paper's `(br_cnt, pc_off)` progress points address it
//! directly — a decoded pc is the same instruction index as a bytecode pc.
//!
//! The flags also pre-classify each op for the segment executor
//! ([`crate::exec::Vm::run_slice`]'s hot path): *breaker* ops (monitor
//! operations, native invocations, throws, synchronized static calls) must
//! run through the legacy one-unit path with their own coordinator
//! consult, everything else can execute inside a straight-line segment.

use crate::bytecode::{Cmp, Insn};
use crate::class::Program;

/// Dense operation code, one per [`Insn`] variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum OpCode {
    Nop,
    ConstI,
    ConstD,
    ConstNull,
    ConstStr,
    Dup,
    DupX1,
    Pop,
    Swap,
    Load,
    Store,
    Inc,
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Neg,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    DAdd,
    DSub,
    DMul,
    DDiv,
    I2D,
    D2I,
    ICmp,
    DCmp,
    RefEq,
    Goto,
    If,
    IfNot,
    IfNull,
    InvokeStatic,
    InvokeVirtual,
    InvokeNative,
    Ret,
    RetVal,
    New,
    GetField,
    PutField,
    GetStatic,
    PutStatic,
    ClassObj,
    NewArray,
    ALoad,
    AStore,
    ALen,
    MonitorEnter,
    MonitorExit,
    Throw,
}

/// The op must execute through the legacy one-unit path (it coordinates
/// with monitors, natives, or exception control flow).
pub(crate) const F_BREAKER: u8 = 1 << 0;
/// `InvokeStatic` whose callee is a synchronized method (implies
/// [`F_BREAKER`]); precomputed so the segment executor never touches the
/// method table for the common non-synchronized call.
pub(crate) const F_SYNC_CALLEE: u8 = 1 << 1;

/// One decoded instruction: fixed-width, `Copy`, no heap indirection.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DOp {
    /// Operation.
    pub code: OpCode,
    /// Classification flags ([`F_BREAKER`], [`F_SYNC_CALLEE`]).
    pub flags: u8,
    /// First operand: local index, branch target, slot, class id, method
    /// id, vslot, string id, native id, or comparison code.
    pub a: u32,
    /// Second operand: argument count or static slot.
    pub b: u32,
    /// Immediate: integer constant, increment delta, or `f64` bits.
    pub imm: i64,
}

impl DOp {
    /// True if this op must run through the legacy one-unit path.
    #[inline]
    pub fn is_breaker(self) -> bool {
        self.flags & F_BREAKER != 0
    }
}

/// Encodes a [`Cmp`] into a `u32` operand.
fn cmp_code(c: Cmp) -> u32 {
    match c {
        Cmp::Eq => 0,
        Cmp::Ne => 1,
        Cmp::Lt => 2,
        Cmp::Le => 3,
        Cmp::Gt => 4,
        Cmp::Ge => 5,
    }
}

/// Decodes a [`Cmp`] operand written by [`cmp_code`].
#[inline]
pub(crate) fn cmp_of(a: u32) -> Cmp {
    match a {
        0 => Cmp::Eq,
        1 => Cmp::Ne,
        2 => Cmp::Lt,
        3 => Cmp::Le,
        4 => Cmp::Gt,
        _ => Cmp::Ge,
    }
}

/// Decodes one instruction. Also the per-op path of the `Match` dispatch
/// engine, which re-derives the flat form from the original `Insn` on
/// every fetch — deliberately paying the decode + match cost the
/// pre-decoded engine amortizes away.
pub(crate) fn decode_one(insn: Insn, program: &Program) -> DOp {
    let op = |code| DOp { code, flags: 0, a: 0, b: 0, imm: 0 };
    match insn {
        Insn::Nop => op(OpCode::Nop),
        Insn::Const(v) => DOp { imm: v, ..op(OpCode::ConstI) },
        Insn::DConst(v) => DOp { imm: v.to_bits() as i64, ..op(OpCode::ConstD) },
        Insn::ConstNull => op(OpCode::ConstNull),
        Insn::ConstStr(sid) => DOp { a: sid.0, ..op(OpCode::ConstStr) },
        Insn::Dup => op(OpCode::Dup),
        Insn::DupX1 => op(OpCode::DupX1),
        Insn::Pop => op(OpCode::Pop),
        Insn::Swap => op(OpCode::Swap),
        Insn::Load(n) => DOp { a: n as u32, ..op(OpCode::Load) },
        Insn::Store(n) => DOp { a: n as u32, ..op(OpCode::Store) },
        Insn::Inc(n, delta) => DOp { a: n as u32, imm: delta as i64, ..op(OpCode::Inc) },
        Insn::Add => op(OpCode::Add),
        Insn::Sub => op(OpCode::Sub),
        Insn::Mul => op(OpCode::Mul),
        Insn::Div => op(OpCode::Div),
        Insn::Rem => op(OpCode::Rem),
        Insn::Neg => op(OpCode::Neg),
        Insn::And => op(OpCode::And),
        Insn::Or => op(OpCode::Or),
        Insn::Xor => op(OpCode::Xor),
        Insn::Shl => op(OpCode::Shl),
        Insn::Shr => op(OpCode::Shr),
        Insn::DAdd => op(OpCode::DAdd),
        Insn::DSub => op(OpCode::DSub),
        Insn::DMul => op(OpCode::DMul),
        Insn::DDiv => op(OpCode::DDiv),
        Insn::I2D => op(OpCode::I2D),
        Insn::D2I => op(OpCode::D2I),
        Insn::ICmp(c) => DOp { a: cmp_code(c), ..op(OpCode::ICmp) },
        Insn::DCmp(c) => DOp { a: cmp_code(c), ..op(OpCode::DCmp) },
        Insn::RefEq => op(OpCode::RefEq),
        Insn::Goto(target) => DOp { a: target, ..op(OpCode::Goto) },
        Insn::If(target) => DOp { a: target, ..op(OpCode::If) },
        Insn::IfNot(target) => DOp { a: target, ..op(OpCode::IfNot) },
        Insn::IfNull(target) => DOp { a: target, ..op(OpCode::IfNull) },
        Insn::InvokeStatic(mid) => {
            let sync = program.methods[mid.0 as usize].synchronized;
            DOp {
                flags: if sync { F_BREAKER | F_SYNC_CALLEE } else { 0 },
                a: mid.0,
                ..op(OpCode::InvokeStatic)
            }
        }
        Insn::InvokeVirtual(slot, argc) => {
            DOp { a: slot.0 as u32, b: argc as u32, ..op(OpCode::InvokeVirtual) }
        }
        Insn::InvokeNative(nid, argc) => {
            DOp { flags: F_BREAKER, a: nid.0, b: argc as u32, ..op(OpCode::InvokeNative) }
        }
        Insn::Ret => op(OpCode::Ret),
        Insn::RetVal => op(OpCode::RetVal),
        Insn::New(cid) => DOp { a: cid.0 as u32, ..op(OpCode::New) },
        Insn::GetField(slot) => DOp { a: slot as u32, ..op(OpCode::GetField) },
        Insn::PutField(slot) => DOp { a: slot as u32, ..op(OpCode::PutField) },
        Insn::GetStatic(cid, slot) => {
            DOp { a: cid.0 as u32, b: slot as u32, ..op(OpCode::GetStatic) }
        }
        Insn::PutStatic(cid, slot) => {
            DOp { a: cid.0 as u32, b: slot as u32, ..op(OpCode::PutStatic) }
        }
        Insn::ClassObj(cid) => DOp { a: cid.0 as u32, ..op(OpCode::ClassObj) },
        Insn::NewArray => op(OpCode::NewArray),
        Insn::ALoad => op(OpCode::ALoad),
        Insn::AStore => op(OpCode::AStore),
        Insn::ALen => op(OpCode::ALen),
        Insn::MonitorEnter => DOp { flags: F_BREAKER, ..op(OpCode::MonitorEnter) },
        Insn::MonitorExit => DOp { flags: F_BREAKER, ..op(OpCode::MonitorExit) },
        Insn::Throw => DOp { flags: F_BREAKER, ..op(OpCode::Throw) },
    }
}

/// The whole program in decoded form, indexed `[method][pc]`.
#[derive(Debug)]
pub(crate) struct DecodedProgram {
    /// Per-method decoded streams, parallel to `Program::methods`.
    pub methods: Vec<Vec<DOp>>,
}

impl DecodedProgram {
    /// Decodes every method of `program`. Deterministic: both replicas
    /// build identical streams from the identical program.
    pub fn build(program: &Program) -> Self {
        let methods = program
            .methods
            .iter()
            .map(|m| m.code.iter().map(|i| decode_one(*i, program)).collect())
            .collect();
        DecodedProgram { methods }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn decode_resolves_operands_and_flags() {
        let mut b = ProgramBuilder::new();
        let print = b.import_native("sys.print_int", 1, false);
        let mut helper = b.method("helper", 1);
        helper.load(0).ret_val();
        let helper_id = helper.build(&mut b);
        let mut m = b.method("main", 1);
        m.push_i(41).push_i(1).add().invoke(helper_id).invoke_native(print, 1).ret_void();
        let entry = m.build(&mut b);
        let program = b.build(entry).unwrap();

        let d = DecodedProgram::build(&program);
        assert_eq!(d.methods.len(), program.methods.len());
        let main_ops = &d.methods[entry.0 as usize];
        assert_eq!(main_ops.len(), program.method(entry).code.len());
        assert_eq!(main_ops[0].code, OpCode::ConstI);
        assert_eq!(main_ops[0].imm, 41);
        assert_eq!(main_ops[2].code, OpCode::Add);
        let call = main_ops[3];
        assert_eq!(call.code, OpCode::InvokeStatic);
        assert_eq!(call.a, helper_id.0);
        assert!(!call.is_breaker(), "plain static call runs in-segment");
        assert!(main_ops[4].is_breaker(), "native invocation breaks segments");
    }

    #[test]
    fn synchronized_callee_is_flagged_as_breaker() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", crate::class::builtin::OBJECT, 0, 0);
        let mut locked = b.method("locked", 1);
        locked.static_of(cls).synchronized();
        locked.ret_void();
        let locked_id = locked.build(&mut b);
        let mut m = b.method("main", 1);
        m.push_i(0).invoke(locked_id).ret_void();
        let entry = m.build(&mut b);
        let program = b.build(entry).unwrap();

        let d = DecodedProgram::build(&program);
        let call = d.methods[entry.0 as usize][1];
        assert_eq!(call.code, OpCode::InvokeStatic);
        assert!(call.flags & F_SYNC_CALLEE != 0);
        assert!(call.is_breaker());
    }

    #[test]
    fn cmp_codes_round_trip() {
        for c in [Cmp::Eq, Cmp::Ne, Cmp::Lt, Cmp::Le, Cmp::Gt, Cmp::Ge] {
            assert_eq!(cmp_of(cmp_code(c)), c);
        }
    }
}
