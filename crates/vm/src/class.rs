//! Classes, methods and whole programs.
//!
//! A [`Program`] is the unit of execution: a closed set of classes and
//! methods plus an entry point, analogous to a classpath of classfiles. Use
//! [`crate::program::ProgramBuilder`] to construct one.

use crate::bytecode::{ClassId, Insn, MethodId, VSlot};

/// Well-known class ids pre-registered by the builder.
pub mod builtin {
    use crate::bytecode::ClassId;

    /// Root of the class hierarchy.
    pub const OBJECT: ClassId = ClassId(0);
    /// Base class of all throwables. Field slot 0 holds an integer code.
    pub const THROWABLE: ClassId = ClassId(1);
    /// Thrown by the VM itself: division by zero, null dereference, array
    /// bounds, illegal monitor state. Extends `THROWABLE`.
    pub const RUNTIME_EXCEPTION: ClassId = ClassId(2);
    /// A soft reference: field slot 0 is the referent, which the collector
    /// may clear under memory pressure (paper §4.3 treats these as strong by
    /// default). Extends `OBJECT`.
    pub const SOFT_REF: ClassId = ClassId(3);
    /// Number of builtin classes.
    pub const COUNT: u16 = 4;

    /// Field slot of the integer error code in `THROWABLE`.
    pub const THROWABLE_CODE_SLOT: u16 = 0;
    /// Field slot of the referent in `SOFT_REF`.
    pub const SOFT_REF_REFERENT_SLOT: u16 = 0;
}

/// Integer codes stored in [`builtin::THROWABLE_CODE_SLOT`] for VM-raised
/// runtime exceptions.
pub mod excode {
    /// Null dereference.
    pub const NULL_POINTER: i64 = 1;
    /// Integer division or remainder by zero.
    pub const ARITHMETIC: i64 = 2;
    /// Array index out of bounds.
    pub const ARRAY_BOUNDS: i64 = 3;
    /// Monitor released or waited on without ownership.
    pub const ILLEGAL_MONITOR: i64 = 4;
    /// Negative array size.
    pub const NEGATIVE_ARRAY_SIZE: i64 = 5;
    /// Virtual dispatch failed (array receiver or empty vtable slot).
    pub const BAD_DISPATCH: i64 = 6;
    /// Base code for native-method aborts; the native's own code is added.
    pub const NATIVE_BASE: i64 = 1000;
}

/// An exception-handler table entry, analogous to a JVM `Code` attribute
/// exception entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Handler {
    /// First covered instruction index (inclusive).
    pub start: u32,
    /// Last covered instruction index (exclusive).
    pub end: u32,
    /// Class caught; `None` catches everything.
    pub class: Option<ClassId>,
    /// Jump target on match; the thrown object is pushed.
    pub target: u32,
}

/// A class definition.
#[derive(Debug, Clone)]
pub struct Class {
    /// Fully-qualified name, e.g. `"spec/db/Database"`.
    pub name: String,
    /// This class's id.
    pub id: ClassId,
    /// Superclass; `None` only for `Object`.
    pub super_class: Option<ClassId>,
    /// Total instance field slots, including inherited slots (which occupy
    /// the lowest indices).
    pub n_fields: u16,
    /// Static field slots of this class (not inherited).
    pub n_statics: u16,
    /// Virtual dispatch table: `vtable[slot]` is the implementation this
    /// class provides (possibly inherited).
    pub vtable: Vec<Option<MethodId>>,
    /// Finalizer to run before reclaiming instances, if any.
    pub finalizer: Option<MethodId>,
}

impl Class {
    /// Resolves a virtual slot to a concrete method.
    pub fn resolve(&self, slot: VSlot) -> Option<MethodId> {
        self.vtable.get(slot.0 as usize).copied().flatten()
    }
}

/// A method definition.
#[derive(Debug, Clone)]
pub struct Method {
    /// This method's id.
    pub id: MethodId,
    /// Human-readable name for diagnostics and native logging.
    pub name: String,
    /// Declaring class, if any (static helpers may be free-standing).
    pub class: Option<ClassId>,
    /// Number of arguments, including the receiver for instance methods.
    pub n_args: u8,
    /// Local-variable slots (arguments occupy the lowest indices).
    pub n_locals: u16,
    /// Whether the method returns a value.
    pub returns: bool,
    /// `synchronized`: the receiver's monitor (or the class object's, for
    /// static methods) is held for the duration of the call.
    pub synchronized: bool,
    /// Static methods take no receiver; synchronized static methods lock
    /// the class object.
    pub is_static: bool,
    /// The code array.
    pub code: Vec<Insn>,
    /// Exception handlers, searched in order.
    pub handlers: Vec<Handler>,
}

/// A native method imported by a program, resolved against the VM's
/// [`crate::native::NativeRegistry`] by name at startup — the analog of JNI
/// linking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeImport {
    /// Signature name, e.g. `"java/lang/System.currentTimeMillis"`.
    pub name: String,
    /// Number of arguments.
    pub argc: u8,
    /// Whether the native pushes a return value.
    pub returns: bool,
}

/// A complete, verified program.
#[derive(Debug, Clone)]
pub struct Program {
    /// All classes, indexed by [`ClassId`].
    pub classes: Vec<Class>,
    /// All methods, indexed by [`MethodId`].
    pub methods: Vec<Method>,
    /// Interned string constants (used by `ConstStr`).
    pub strings: Vec<String>,
    /// Native methods referenced by `InvokeNative`, indexed by
    /// [`crate::bytecode::NativeId`].
    pub native_imports: Vec<NativeImport>,
    /// The `main` method; must be static with one argument (an int the
    /// harness passes, by convention a scale factor).
    pub entry: MethodId,
}

impl Program {
    /// Looks up a class.
    ///
    /// # Panics
    /// Panics if the id is out of range (ids come from the builder, so this
    /// indicates a corrupted program).
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    /// Looks up a method.
    ///
    /// # Panics
    /// Panics if the id is out of range.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.0 as usize]
    }

    /// True if `sub` equals `sup` or transitively extends it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.class(c).super_class;
        }
        false
    }

    /// Total bytecode instructions across all methods.
    pub fn code_size(&self) -> usize {
        self.methods.iter().map(|m| m.code.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    #[test]
    fn subclass_chain() {
        let mut b = ProgramBuilder::new();
        let a = b.add_class("A", builtin::OBJECT, 0, 0);
        let c = b.add_class("C", a, 0, 0);
        let mut m = b.method("main", 1);
        m.ret_void();
        let entry = m.build(&mut b);
        let p = b.build(entry).unwrap();
        assert!(p.is_subclass(c, a));
        assert!(p.is_subclass(c, builtin::OBJECT));
        assert!(p.is_subclass(a, a));
        assert!(!p.is_subclass(a, c));
        assert!(p.is_subclass(builtin::RUNTIME_EXCEPTION, builtin::THROWABLE));
    }
}
