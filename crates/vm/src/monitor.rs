//! Re-entrant per-object monitors with wait sets, plus the per-lock
//! bookkeeping the replication layer needs.
//!
//! Every object can serve as a Java-style monitor: re-entrant mutual
//! exclusion (`monitorenter`/`monitorexit`, `synchronized` methods) and
//! condition synchronization (`wait`/`notify`/`notifyAll`). The monitor
//! carries two pieces of replication state from the paper (§4.2):
//!
//! * `l_asn` — the *lock acquire sequence number*, counting acquisitions by
//!   **application** threads (system-thread acquisitions are not
//!   replicated and therefore must not perturb the count);
//! * `l_id` — the virtual lock id lazily assigned by the primary the first
//!   time the lock is acquired, shipped to the backup in an *id map*.
//!
//! This module owns the monitor *data*; the blocking/wake-up choreography
//! lives in the executor, which couples monitors to the scheduler.

use crate::thread::ThreadIdx;
use crate::value::ObjRef;
use std::collections::{HashMap, VecDeque};

/// Error returned when a thread releases or waits on a monitor it does not
/// own — the VM turns it into `IllegalMonitorStateException`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotOwner;

impl std::fmt::Display for NotOwner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread does not own the monitor")
    }
}

impl std::error::Error for NotOwner {}

/// A thread parked in a wait set, remembering the recursion depth it must
/// restore when it re-acquires the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Waiter {
    /// The waiting thread.
    pub thread: ThreadIdx,
    /// Monitor recursion depth saved by `wait`.
    pub saved_recursion: u32,
}

/// One object's monitor.
#[derive(Debug, Clone, Default)]
pub struct Monitor {
    /// Current owner, if held.
    pub owner: Option<ThreadIdx>,
    /// Re-entrancy depth (1 for a single acquisition).
    pub recursion: u32,
    /// Threads blocked trying to enter, FIFO.
    pub entry_queue: VecDeque<ThreadIdx>,
    /// Threads parked in `wait`, FIFO.
    pub wait_set: VecDeque<Waiter>,
    /// Lock acquire sequence number: application-thread acquisitions so far.
    pub l_asn: u64,
    /// Virtual lock id assigned on first acquisition at the primary, or
    /// adopted from an id map at the backup.
    pub l_id: Option<u64>,
}

/// Result of [`Monitor::try_enter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnterResult {
    /// The monitor was acquired (freshly or re-entrantly).
    Acquired {
        /// True if this was a recursive acquisition by the existing owner.
        recursive: bool,
    },
    /// The monitor is held by another thread.
    Contended {
        /// The current owner.
        owner: ThreadIdx,
    },
}

impl Monitor {
    /// Attempts to acquire for `t`. Does not touch `l_asn` — the executor
    /// bumps it only for application threads on non-recursive acquisitions.
    pub fn try_enter(&mut self, t: ThreadIdx) -> EnterResult {
        match self.owner {
            None => {
                self.owner = Some(t);
                self.recursion = 1;
                EnterResult::Acquired { recursive: false }
            }
            Some(o) if o == t => {
                self.recursion += 1;
                EnterResult::Acquired { recursive: true }
            }
            Some(o) => EnterResult::Contended { owner: o },
        }
    }

    /// Releases one level of recursion held by `t`. Returns `Ok(true)` if
    /// the monitor became free (and the entry queue should be woken).
    ///
    /// # Errors
    /// Returns [`NotOwner`] if `t` does not own the monitor — the caller
    /// raises `IllegalMonitorStateException`.
    pub fn exit(&mut self, t: ThreadIdx) -> Result<bool, NotOwner> {
        if self.owner != Some(t) {
            return Err(NotOwner);
        }
        self.recursion -= 1;
        if self.recursion == 0 {
            self.owner = None;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Releases the monitor *fully* for `wait`: returns the saved recursion
    /// depth.
    ///
    /// # Errors
    /// Returns [`NotOwner`] if `t` does not own the monitor.
    pub fn release_all(&mut self, t: ThreadIdx) -> Result<u32, NotOwner> {
        if self.owner != Some(t) {
            return Err(NotOwner);
        }
        let depth = self.recursion;
        self.owner = None;
        self.recursion = 0;
        Ok(depth)
    }

    /// True if `t` currently owns the monitor.
    pub fn owned_by(&self, t: ThreadIdx) -> bool {
        self.owner == Some(t)
    }
}

/// All monitors, keyed by object. Entries are created lazily on first use
/// and dropped when their object is collected.
#[derive(Debug, Default)]
pub struct MonitorTable {
    pub(crate) map: HashMap<ObjRef, Monitor>,
}

impl MonitorTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        MonitorTable::default()
    }

    /// The monitor for `obj`, created on first use.
    pub fn monitor_mut(&mut self, obj: ObjRef) -> &mut Monitor {
        self.map.entry(obj).or_default()
    }

    /// The monitor for `obj`, if it has ever been used.
    pub fn monitor(&self, obj: ObjRef) -> Option<&Monitor> {
        self.map.get(&obj)
    }

    /// Objects whose monitor is in active use (owned, contended, or with
    /// waiters); these must be treated as GC roots so a locked object can
    /// never be collected out from under its monitor.
    pub fn active_objects(&self) -> impl Iterator<Item = ObjRef> + '_ {
        self.map.iter().filter_map(|(obj, m)| {
            if m.owner.is_some() || !m.entry_queue.is_empty() || !m.wait_set.is_empty() {
                Some(*obj)
            } else {
                None
            }
        })
    }

    /// Number of distinct objects ever locked (the paper's "Objects Locked"
    /// row in Table 2 counts these at the primary).
    pub fn objects_locked(&self) -> usize {
        self.map.values().filter(|m| m.l_asn > 0 || m.owner.is_some()).count()
    }

    /// The largest virtual lock id any monitor carries, if any was ever
    /// assigned. A backup promoting to primary seeds its id allocator
    /// past this so fresh assignments never collide with replayed ones.
    pub fn max_lock_id(&self) -> Option<u64> {
        self.map.values().filter_map(|m| m.l_id).max()
    }

    /// Drops monitor entries for objects freed by the collector.
    pub fn retain_live(&mut self, is_live: impl Fn(ObjRef) -> bool) {
        self.map.retain(|obj, m| {
            is_live(*obj)
                || m.owner.is_some()
                || !m.entry_queue.is_empty()
                || !m.wait_set.is_empty()
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadIdx {
        ThreadIdx(n)
    }

    #[test]
    fn reentrant_acquire_release() {
        let mut m = Monitor::default();
        assert_eq!(m.try_enter(t(1)), EnterResult::Acquired { recursive: false });
        assert_eq!(m.try_enter(t(1)), EnterResult::Acquired { recursive: true });
        assert_eq!(m.try_enter(t(2)), EnterResult::Contended { owner: t(1) });
        assert_eq!(m.exit(t(1)), Ok(false));
        assert_eq!(m.exit(t(1)), Ok(true));
        assert_eq!(m.try_enter(t(2)), EnterResult::Acquired { recursive: false });
    }

    #[test]
    fn exit_without_ownership_is_error() {
        let mut m = Monitor::default();
        assert_eq!(m.exit(t(1)), Err(NotOwner));
        m.try_enter(t(1));
        assert_eq!(m.exit(t(2)), Err(NotOwner));
    }

    #[test]
    fn release_all_saves_depth() {
        let mut m = Monitor::default();
        m.try_enter(t(1));
        m.try_enter(t(1));
        m.try_enter(t(1));
        assert_eq!(m.release_all(t(1)), Ok(3));
        assert_eq!(m.owner, None);
        assert_eq!(m.release_all(t(1)), Err(NotOwner));
    }

    #[test]
    fn table_tracks_active_objects() {
        let mut tbl = MonitorTable::new();
        let a = ObjRef::from_index(1);
        let b = ObjRef::from_index(2);
        tbl.monitor_mut(a).try_enter(t(1));
        tbl.monitor_mut(b); // touched but never locked
        let active: Vec<ObjRef> = tbl.active_objects().collect();
        assert_eq!(active, vec![a]);
        assert_eq!(tbl.objects_locked(), 1);
    }

    #[test]
    fn retain_live_keeps_active_monitors() {
        let mut tbl = MonitorTable::new();
        let a = ObjRef::from_index(1);
        let b = ObjRef::from_index(2);
        tbl.monitor_mut(a).try_enter(t(1));
        tbl.monitor_mut(b);
        tbl.retain_live(|_| false); // "everything died"
        assert!(tbl.monitor(a).is_some(), "owned monitor survives");
        assert!(tbl.monitor(b).is_none(), "idle monitor dropped");
    }
}
