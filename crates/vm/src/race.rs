//! An Eraser-style lockset data-race detector.
//!
//! Replicated lock synchronization is only correct for race-free programs
//! (restriction R4A); the paper suggests verifying R4A with a dynamic race
//! detector in the style of Eraser (its citation \[6\]) rather than fixing
//! races by hand after replay breaks. This module implements the classic
//! lockset algorithm over the VM's shared locations — static fields,
//! object fields, and arrays — using the Eraser state machine:
//!
//! ```text
//! Virgin ──first access──▶ Exclusive(t)
//! Exclusive ──access by another thread──▶ Shared (read) / SharedModified (write)
//! Shared ──write──▶ SharedModified
//! Shared*/SharedModified: lockset ∩= locks held at each access
//! SharedModified with empty lockset ⇒ race reported (once per location)
//! ```
//!
//! Enable it with [`crate::exec::VmConfig::race_detect`]; findings appear
//! in [`crate::exec::RunReport::races`]. The detector is a *verifier* for
//! R4A, not part of replica coordination — it runs on an unreplicated VM.

use crate::bytecode::ClassId;
use crate::thread::ThreadIdx;
use crate::value::ObjRef;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A shared memory location, at the granularity Eraser-style detection
/// needs: one entry per static slot, per object field, and per array
/// (whole-array granularity — fine for verifying R4A, which is about
/// locking discipline, not element-level precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loc {
    /// A static field: (class, slot).
    Static(ClassId, u16),
    /// An instance field: (object, slot).
    Field(ObjRef, u16),
    /// Any element of an array object.
    Array(ObjRef),
}

impl fmt::Display for Loc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Loc::Static(c, s) => write!(f, "static class#{}.{s}", c.0),
            Loc::Field(o, s) => write!(f, "{o}.{s}"),
            Loc::Array(o) => write!(f, "{o}[*]"),
        }
    }
}

/// Kind of access that completed a race.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// A read.
    Read,
    /// A write.
    Write,
}

/// One reported race: the first access that emptied the candidate lockset
/// of a shared-modified location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RaceReport {
    /// The racy location.
    pub loc: Loc,
    /// The accessing thread.
    pub thread: ThreadIdx,
    /// Read or write.
    pub access: Access,
}

impl fmt::Display for RaceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "data race: {} {} by thread {} with empty lockset (R4A violation)",
            match self.access {
                Access::Read => "read of",
                Access::Write => "write to",
            },
            self.loc,
            self.thread
        )
    }
}

#[derive(Debug, Clone)]
enum LocState {
    /// Only one thread has touched the location.
    Exclusive(ThreadIdx),
    /// Multiple readers, no post-sharing write yet.
    Shared(HashSet<ObjRef>),
    /// Written after becoming shared; an empty lockset here is a race.
    SharedModified(HashSet<ObjRef>),
}

/// The lockset detector.
#[derive(Debug, Default)]
pub struct RaceDetector {
    state: HashMap<Loc, LocState>,
    reported: HashSet<Loc>,
    /// All races found, in discovery order.
    pub reports: Vec<RaceReport>,
}

impl RaceDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        RaceDetector::default()
    }

    /// Records one access by `t` while holding `held` monitors.
    pub fn on_access(&mut self, loc: Loc, t: ThreadIdx, held: &[ObjRef], is_write: bool) {
        let entry = self.state.entry(loc);
        let state = entry.or_insert(LocState::Exclusive(t));
        match state {
            LocState::Exclusive(owner) => {
                if *owner == t {
                    return; // still thread-local
                }
                // Second thread: initialize the candidate lockset from the
                // locks held right now.
                let lockset: HashSet<ObjRef> = held.iter().copied().collect();
                *state = if is_write {
                    LocState::SharedModified(lockset)
                } else {
                    LocState::Shared(lockset)
                };
                self.check(loc, t, is_write);
            }
            LocState::Shared(lockset) => {
                lockset.retain(|l| held.contains(l));
                if is_write {
                    let ls = lockset.clone();
                    *state = LocState::SharedModified(ls);
                }
                self.check(loc, t, is_write);
            }
            LocState::SharedModified(lockset) => {
                lockset.retain(|l| held.contains(l));
                self.check(loc, t, is_write);
            }
        }
    }

    fn check(&mut self, loc: Loc, t: ThreadIdx, is_write: bool) {
        let racy =
            matches!(self.state.get(&loc), Some(LocState::SharedModified(ls)) if ls.is_empty());
        if racy && self.reported.insert(loc) {
            self.reports.push(RaceReport {
                loc,
                thread: t,
                access: if is_write { Access::Write } else { Access::Read },
            });
        }
    }

    /// Drops state for heap objects freed by the collector (their slots
    /// may be reused for unrelated objects).
    pub fn retain_live(&mut self, is_live: impl Fn(ObjRef) -> bool) {
        self.state.retain(|loc, _| match loc {
            Loc::Static(..) => true,
            Loc::Field(o, _) | Loc::Array(o) => is_live(*o),
        });
    }

    /// Number of distinct racy locations found.
    pub fn race_count(&self) -> usize {
        self.reports.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u32) -> ThreadIdx {
        ThreadIdx(n)
    }
    fn lock(n: usize) -> ObjRef {
        ObjRef::from_index(n)
    }

    #[test]
    fn thread_local_access_never_reports() {
        let mut d = RaceDetector::new();
        let loc = Loc::Static(ClassId(1), 0);
        for _ in 0..100 {
            d.on_access(loc, t(1), &[], true);
        }
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn consistently_locked_access_never_reports() {
        let mut d = RaceDetector::new();
        let loc = Loc::Field(ObjRef::from_index(9), 2);
        for round in 0..50 {
            let th = t(round % 3);
            d.on_access(loc, th, &[lock(7)], round % 2 == 0);
        }
        assert_eq!(d.race_count(), 0);
    }

    #[test]
    fn unlocked_shared_write_reports_once() {
        let mut d = RaceDetector::new();
        let loc = Loc::Static(ClassId(1), 0);
        d.on_access(loc, t(1), &[], true); // exclusive
        d.on_access(loc, t(2), &[], true); // shared-modified, empty lockset
        d.on_access(loc, t(1), &[], true); // still racy — but reported once
        assert_eq!(d.race_count(), 1);
        assert_eq!(d.reports[0].thread, t(2));
        assert_eq!(d.reports[0].access, Access::Write);
    }

    #[test]
    fn read_shared_without_locks_is_fine_until_written() {
        let mut d = RaceDetector::new();
        let loc = Loc::Array(ObjRef::from_index(4));
        d.on_access(loc, t(1), &[], false);
        d.on_access(loc, t(2), &[], false);
        d.on_access(loc, t(3), &[], false);
        assert_eq!(d.race_count(), 0, "read-only sharing needs no locks");
        d.on_access(loc, t(2), &[], true);
        assert_eq!(d.race_count(), 1);
    }

    #[test]
    fn lockset_refines_to_common_lock() {
        let mut d = RaceDetector::new();
        let loc = Loc::Static(ClassId(2), 1);
        d.on_access(loc, t(1), &[lock(1), lock(2)], true);
        d.on_access(loc, t(2), &[lock(2), lock(3)], true); // ∩ = {2}
        assert_eq!(d.race_count(), 0);
        d.on_access(loc, t(1), &[lock(2)], true); // still {2}
        assert_eq!(d.race_count(), 0);
        d.on_access(loc, t(2), &[lock(3)], true); // ∩ = {} -> race
        assert_eq!(d.race_count(), 1);
    }

    #[test]
    fn inconsistent_then_consistent_still_counts_the_violation() {
        // Eraser semantics: once the lockset empties, the discipline was
        // violated even if later accesses are locked.
        let mut d = RaceDetector::new();
        let loc = Loc::Static(ClassId(1), 3);
        d.on_access(loc, t(1), &[], true);
        d.on_access(loc, t(2), &[], true);
        assert_eq!(d.race_count(), 1);
        d.on_access(loc, t(1), &[lock(5)], true);
        assert_eq!(d.race_count(), 1);
    }

    #[test]
    fn retain_live_drops_heap_entries_only() {
        let mut d = RaceDetector::new();
        let s = Loc::Static(ClassId(1), 0);
        let f = Loc::Field(ObjRef::from_index(3), 0);
        d.on_access(s, t(1), &[], false);
        d.on_access(f, t(1), &[], false);
        d.retain_live(|_| false);
        assert!(d.state.contains_key(&s));
        assert!(!d.state.contains_key(&f));
    }

    #[test]
    fn report_display_is_informative() {
        let r = RaceReport { loc: Loc::Static(ClassId(4), 2), thread: t(7), access: Access::Write };
        let s = r.to_string();
        assert!(s.contains("R4A"));
        assert!(s.contains("static class#4.2"));
        assert!(s.contains("#7"));
    }
}
