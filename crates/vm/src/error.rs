//! Fatal virtual-machine errors.
//!
//! These are the paper's R0 class of failures: errors of the run-time
//! environment or of the VM implementation itself. They terminate the
//! replica that encounters them and are deliberately **not** replicated —
//! replicating them would make all replicas fail deterministically
//! (paper §3.1). Application-level exceptions (null dereference, division
//! by zero, …) are *not* `VmError`s; they are thrown as catchable
//! throwable objects inside the VM.

use crate::thread::ThreadIdx;
use std::error::Error;
use std::fmt;

/// A fatal error that terminates the replica.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmError {
    /// The heap's hard capacity was exhausted (resource exhaustion, R0).
    OutOfMemory,
    /// Every live thread is blocked and no wake-up is possible.
    Deadlock {
        /// Human-readable description of who waits on what.
        detail: String,
    },
    /// The configured instruction budget was exceeded (runaway program).
    InstructionBudget,
    /// A reference pointed at a freed or never-allocated heap slot — a VM
    /// implementation bug or GC root omission.
    DanglingRef {
        /// Diagnostic context.
        detail: String,
    },
    /// An operand had the wrong type for an instruction — the verifier
    /// should prevent this; reaching it indicates a VM bug.
    TypeError {
        /// Diagnostic context.
        detail: String,
    },
    /// A native import could not be resolved against the registry.
    UnlinkedNative {
        /// The unresolved signature name.
        name: String,
    },
    /// A native import resolved but with a mismatched signature.
    NativeSignature {
        /// The offending signature name.
        name: String,
        /// Explanation.
        detail: String,
    },
    /// Backup-only: the replayed execution diverged from the primary's log
    /// (e.g. a data race broke restriction R4A, §3.3).
    ReplayDivergence {
        /// Which thread diverged.
        thread: ThreadIdx,
        /// Explanation of the mismatch.
        detail: String,
    },
    /// Internal invariant violation.
    Internal(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::OutOfMemory => f.write_str("heap capacity exhausted"),
            VmError::Deadlock { detail } => write!(f, "deadlock: {detail}"),
            VmError::InstructionBudget => f.write_str("instruction budget exceeded"),
            VmError::DanglingRef { detail } => write!(f, "dangling reference: {detail}"),
            VmError::TypeError { detail } => write!(f, "operand type error: {detail}"),
            VmError::UnlinkedNative { name } => write!(f, "unresolved native method `{name}`"),
            VmError::NativeSignature { name, detail } => {
                write!(f, "native `{name}` signature mismatch: {detail}")
            }
            VmError::ReplayDivergence { thread, detail } => {
                write!(f, "replay diverged from primary log at thread {thread}: {detail}")
            }
            VmError::Internal(s) => write!(f, "internal VM error: {s}"),
        }
    }
}

impl Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = VmError::ReplayDivergence { thread: ThreadIdx(3), detail: "lock order".into() };
        let s = e.to_string();
        assert!(s.contains("#3"));
        assert!(s.contains("lock order"));
        assert!(VmError::OutOfMemory.to_string().starts_with("heap"));
    }
}
