//! Dynamic opcode-frequency profiler: the measurement substrate behind
//! the superinstruction fusion table.
//!
//! When [`crate::VmConfig::profile_ops`] is set, the execution engine
//! records every executed op plus *statically contiguous* digrams and
//! trigrams — pairs/triples of ops at consecutive pcs where the second
//! (third) op executed immediately after the first. Contiguity is the
//! fusion precondition: a superinstruction replaces ops at `pc..pc+len`,
//! so a dynamic adjacency across a taken branch (or a call/return) is not
//! a fusion candidate and resets the chain. Breaker and cold ops (those
//! the straight-line loop cannot execute) also reset it, because they can
//! never be fused.
//!
//! The profiler exists for the `--profile-ops` mode of the interp bench
//! bin; its output is the provenance of the fusion table documented in
//! DESIGN.md §8. It is never enabled on a replicated run.

use crate::decoded::OpCode;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Executed-op frequency counts: singles, contiguous digrams, contiguous
/// trigrams.
#[derive(Debug, Default)]
pub struct OpProfiler {
    singles: HashMap<OpCode, u64>,
    digrams: HashMap<[OpCode; 2], u64>,
    trigrams: HashMap<[OpCode; 3], u64>,
    hist: [Option<OpCode>; 2],
}

impl OpProfiler {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one executed op. `sequential` is true when this op sits at
    /// the pc immediately after the previously recorded op (the static
    /// contiguity fusion needs); a non-sequential op still counts as a
    /// single but starts a fresh chain.
    pub(crate) fn note(&mut self, code: OpCode, sequential: bool) {
        if !sequential {
            self.hist = [None, None];
        }
        *self.singles.entry(code).or_insert(0) += 1;
        if let Some(prev) = self.hist[1] {
            *self.digrams.entry([prev, code]).or_insert(0) += 1;
            if let Some(prev2) = self.hist[0] {
                *self.trigrams.entry([prev2, prev, code]).or_insert(0) += 1;
            }
        }
        self.hist = [self.hist[1], Some(code)];
    }

    /// Records an op the straight-line loop cannot execute (cold or
    /// breaker): counted as a single, and the chain resets — such ops are
    /// never fusion constituents.
    pub(crate) fn note_break(&mut self, code: OpCode) {
        *self.singles.entry(code).or_insert(0) += 1;
        self.hist = [None, None];
    }

    /// Folds `other`'s counts into `self` (cross-workload aggregation).
    pub fn merge(&mut self, other: &OpProfiler) {
        for (k, v) in &other.singles {
            *self.singles.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.digrams {
            *self.digrams.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.trigrams {
            *self.trigrams.entry(*k).or_insert(0) += v;
        }
    }

    /// Total executed ops recorded.
    pub fn total(&self) -> u64 {
        self.singles.values().sum()
    }

    fn ranked<K: Copy>(map: &HashMap<K, u64>) -> Vec<(K, u64)> {
        let mut v: Vec<(K, u64)> = map.iter().map(|(k, c)| (*k, *c)).collect();
        v.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        v
    }

    /// Renders the top-`n` singles, digrams, and trigrams as a ranked
    /// table (counts and share of all executed ops).
    pub fn report(&self, n: usize) -> String {
        let total = self.total().max(1) as f64;
        let mut out = String::new();
        let pct = |c: u64| 100.0 * c as f64 / total;
        let _ = writeln!(out, "  ops recorded: {}", self.total());
        let _ = writeln!(out, "  top singles:");
        for (k, c) in Self::ranked(&self.singles).into_iter().take(n) {
            let _ = writeln!(out, "    {:>12}  {:?} ({:.1}%)", c, k, pct(c));
        }
        let _ = writeln!(out, "  top contiguous digrams:");
        for (k, c) in Self::ranked(&self.digrams).into_iter().take(n) {
            let _ = writeln!(out, "    {:>12}  {:?}+{:?} ({:.1}%)", c, k[0], k[1], pct(c));
        }
        let _ = writeln!(out, "  top contiguous trigrams:");
        for (k, c) in Self::ranked(&self.trigrams).into_iter().take(n) {
            let _ =
                writeln!(out, "    {:>12}  {:?}+{:?}+{:?} ({:.1}%)", c, k[0], k[1], k[2], pct(c));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguity_gates_digrams_and_trigrams() {
        let mut p = OpProfiler::new();
        p.note(OpCode::Load, false);
        p.note(OpCode::ConstI, true);
        p.note(OpCode::ICmp, true);
        // A taken branch: the next op is non-sequential.
        p.note(OpCode::Load, false);
        p.note(OpCode::IfNot, true);
        assert_eq!(p.total(), 5);
        assert_eq!(p.digrams[&[OpCode::Load, OpCode::ConstI]], 1);
        assert_eq!(p.digrams[&[OpCode::Load, OpCode::IfNot]], 1);
        assert_eq!(p.trigrams[&[OpCode::Load, OpCode::ConstI, OpCode::ICmp]], 1);
        assert!(!p.digrams.contains_key(&[OpCode::ICmp, OpCode::Load]));
    }

    #[test]
    fn breaks_reset_the_chain() {
        let mut p = OpProfiler::new();
        p.note(OpCode::Load, false);
        p.note_break(OpCode::InvokeNative);
        p.note(OpCode::Store, true);
        assert!(p.digrams.is_empty());
        let mut q = OpProfiler::new();
        q.note(OpCode::Load, false);
        q.note(OpCode::Store, true);
        p.merge(&q);
        assert_eq!(p.singles[&OpCode::Load], 2);
        assert_eq!(p.digrams[&[OpCode::Load, OpCode::Store]], 1);
    }
}
