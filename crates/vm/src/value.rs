//! Runtime values of the virtual machine.

use std::fmt;

/// A reference to a heap object or array.
///
/// References are stable indices into the (non-moving) heap; they are
/// meaningful only within one replica, which is precisely why the
/// replication layer must use *virtual* thread and lock identifiers on the
/// wire instead of raw `ObjRef`s (paper §4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjRef(pub(crate) u32);

impl ObjRef {
    /// The raw heap slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a reference from a raw slot index. Intended for the heap
    /// and for tests; dangling references are caught at use time.
    pub fn from_index(i: usize) -> Self {
        ObjRef(i as u32)
    }
}

impl fmt::Display for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// A single operand-stack or local-variable slot.
///
/// The VM collapses Java's `int`/`long` into `Int(i64)` and `float`/`double`
/// into `Double(f64)`; the distinction is irrelevant to replica
/// coordination, which treats all read-set values uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Value {
    /// The null reference.
    #[default]
    Null,
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit IEEE-754 float.
    Double(f64),
    /// A reference to a heap object or array.
    Ref(ObjRef),
}

impl Value {
    /// Interprets the value as an integer.
    ///
    /// # Errors
    /// Returns the value itself if it is not an `Int`.
    pub fn as_int(self) -> Result<i64, Value> {
        match self {
            Value::Int(v) => Ok(v),
            other => Err(other),
        }
    }

    /// Interprets the value as a double.
    ///
    /// # Errors
    /// Returns the value itself if it is not a `Double`.
    pub fn as_double(self) -> Result<f64, Value> {
        match self {
            Value::Double(v) => Ok(v),
            other => Err(other),
        }
    }

    /// Interprets the value as a (non-null) reference.
    ///
    /// # Errors
    /// Returns the value itself if it is `Null` or not a reference.
    pub fn as_ref(self) -> Result<ObjRef, Value> {
        match self {
            Value::Ref(r) => Ok(r),
            other => Err(other),
        }
    }

    /// True for `Null`.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness used by conditional branches: nonzero ints are true.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Double(v) => v != 0.0,
            Value::Ref(_) => true,
            Value::Null => false,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<ObjRef> for Value {
    fn from(v: ObjRef) -> Self {
        Value::Ref(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Int(v as i64)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Double(v) => write!(f, "{v}"),
            Value::Ref(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_accessors() {
        assert_eq!(Value::from(5i64).as_int().unwrap(), 5);
        assert_eq!(Value::from(2.5f64).as_double().unwrap(), 2.5);
        assert_eq!(Value::from(true), Value::Int(1));
        let r = ObjRef::from_index(3);
        assert_eq!(Value::from(r).as_ref().unwrap(), r);
        assert!(Value::Null.as_ref().is_err());
        assert!(Value::Int(1).as_double().is_err());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-1).is_truthy());
        assert!(Value::Ref(ObjRef::from_index(0)).is_truthy());
        assert!(!Value::Double(0.0).is_truthy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(ObjRef::from_index(9).to_string(), "@9");
    }
}
