//! A disassembler for verified programs.
//!
//! Produces a readable listing of classes, vtables and method bytecode —
//! handy when debugging replay divergences, because the schedule records'
//! `(method, pc_off)` pairs and the lock records' call sites can be read
//! straight off the listing.
//!
//! ```
//! use ftjvm_vm::program::ProgramBuilder;
//! use ftjvm_vm::disasm::disassemble;
//!
//! let mut b = ProgramBuilder::new();
//! let mut m = b.method("main", 1);
//! m.push_i(2).push_i(3).add().pop().ret_void();
//! let entry = m.build(&mut b);
//! let p = b.build(entry)?;
//! let listing = disassemble(&p);
//! assert!(listing.contains("method 0: main"));
//! assert!(listing.contains("add"));
//! # Ok::<(), ftjvm_vm::program::BuildError>(())
//! ```

use crate::bytecode::Insn;
use crate::class::Program;
use crate::decoded::{DOp, DecodedProgram, OpCode, F_FUSE_SHIFT, F_SYNC_CALLEE};
use std::fmt::Write as _;

/// Renders one instruction.
pub fn insn_to_string(program: &Program, i: &Insn) -> String {
    match i {
        Insn::Const(v) => format!("const {v}"),
        Insn::DConst(v) => format!("dconst {v}"),
        Insn::ConstNull => "null".into(),
        Insn::ConstStr(s) => format!("str {:?}", program.strings[s.0 as usize]),
        Insn::Dup => "dup".into(),
        Insn::DupX1 => "dup_x1".into(),
        Insn::Pop => "pop".into(),
        Insn::Swap => "swap".into(),
        Insn::Load(n) => format!("load {n}"),
        Insn::Store(n) => format!("store {n}"),
        Insn::Inc(n, d) => format!("inc {n}, {d}"),
        Insn::Add => "add".into(),
        Insn::Sub => "sub".into(),
        Insn::Mul => "mul".into(),
        Insn::Div => "div".into(),
        Insn::Rem => "rem".into(),
        Insn::Neg => "neg".into(),
        Insn::And => "and".into(),
        Insn::Or => "or".into(),
        Insn::Xor => "xor".into(),
        Insn::Shl => "shl".into(),
        Insn::Shr => "shr".into(),
        Insn::DAdd => "dadd".into(),
        Insn::DSub => "dsub".into(),
        Insn::DMul => "dmul".into(),
        Insn::DDiv => "ddiv".into(),
        Insn::I2D => "i2d".into(),
        Insn::D2I => "d2i".into(),
        Insn::ICmp(c) => format!("icmp {c}"),
        Insn::DCmp(c) => format!("dcmp {c}"),
        Insn::RefEq => "refeq".into(),
        Insn::Goto(t) => format!("goto @{t}"),
        Insn::If(t) => format!("if @{t}"),
        Insn::IfNot(t) => format!("ifnot @{t}"),
        Insn::IfNull(t) => format!("ifnull @{t}"),
        Insn::InvokeStatic(m) => {
            format!("invoke {} ({})", m.0, program.method(*m).name)
        }
        Insn::InvokeVirtual(slot, argc) => format!("invokevirtual slot={} argc={argc}", slot.0),
        Insn::InvokeNative(n, argc) => format!(
            "invokenative {} ({}) argc={argc}",
            n.0,
            program.native_imports.get(n.0 as usize).map(|i| i.name.as_str()).unwrap_or("?")
        ),
        Insn::Ret => "ret".into(),
        Insn::RetVal => "retval".into(),
        Insn::New(c) => format!("new {} ({})", c.0, program.class(*c).name),
        Insn::GetField(s) => format!("getfield {s}"),
        Insn::PutField(s) => format!("putfield {s}"),
        Insn::GetStatic(c, s) => format!("getstatic {}.{s}", program.class(*c).name),
        Insn::PutStatic(c, s) => format!("putstatic {}.{s}", program.class(*c).name),
        Insn::ClassObj(c) => format!("classobj {}", program.class(*c).name),
        Insn::NewArray => "newarray".into(),
        Insn::ALoad => "aload".into(),
        Insn::AStore => "astore".into(),
        Insn::ALen => "alen".into(),
        Insn::MonitorEnter => "monitorenter".into(),
        Insn::MonitorExit => "monitorexit".into(),
        Insn::Throw => "throw".into(),
        Insn::Nop => "nop".into(),
    }
}

/// Renders one decoded op in its quickened form: operand meanings follow
/// the `quick`/`fused` streams (an `InvokeStatic` shows the folded callee
/// frame shape, an `InvokeVirtual` its inline-cache site id). Fused
/// superinstructions render their raw packed operands here; prefer
/// [`disassemble_decoded`], which expands them into constituent singles.
pub(crate) fn dop_to_string(program: &Program, op: &DOp) -> String {
    match op.code {
        OpCode::Nop => "nop".into(),
        OpCode::ConstI => format!("const {}", op.imm),
        OpCode::ConstD => format!("dconst {}", f64::from_bits(op.imm as u64)),
        OpCode::ConstNull => "null".into(),
        OpCode::ConstStr => format!("str {:?}", program.strings[op.a as usize]),
        OpCode::Dup => "dup".into(),
        OpCode::DupX1 => "dup_x1".into(),
        OpCode::Pop => "pop".into(),
        OpCode::Swap => "swap".into(),
        OpCode::Load => format!("load {}", op.a),
        OpCode::Store => format!("store {}", op.a),
        OpCode::Inc => format!("inc {}, {}", op.a, op.imm),
        OpCode::Add => "add".into(),
        OpCode::Sub => "sub".into(),
        OpCode::Mul => "mul".into(),
        OpCode::Div => "div".into(),
        OpCode::Rem => "rem".into(),
        OpCode::Neg => "neg".into(),
        OpCode::And => "and".into(),
        OpCode::Or => "or".into(),
        OpCode::Xor => "xor".into(),
        OpCode::Shl => "shl".into(),
        OpCode::Shr => "shr".into(),
        OpCode::DAdd => "dadd".into(),
        OpCode::DSub => "dsub".into(),
        OpCode::DMul => "dmul".into(),
        OpCode::DDiv => "ddiv".into(),
        OpCode::I2D => "i2d".into(),
        OpCode::D2I => "d2i".into(),
        OpCode::ICmp => format!("icmp {}", crate::decoded::cmp_of(op.a)),
        OpCode::DCmp => format!("dcmp {}", crate::decoded::cmp_of(op.a)),
        OpCode::RefEq => "refeq".into(),
        OpCode::Goto => format!("goto @{}", op.a),
        OpCode::If => format!("if @{}", op.a),
        OpCode::IfNot => format!("ifnot @{}", op.a),
        OpCode::IfNull => format!("ifnull @{}", op.a),
        OpCode::InvokeStatic => {
            let name = &program.methods[op.a as usize].name;
            if op.flags & F_SYNC_CALLEE != 0 {
                format!("invoke {} ({name}) [sync]", op.a)
            } else {
                format!("invoke {} ({name}) [quick args={} locals={}]", op.a, op.b, op.imm)
            }
        }
        OpCode::InvokeVirtual => {
            let ic = if op.imm >= 0 { format!("ic#{}", op.imm) } else { "ic=none".into() };
            format!("invokevirtual slot={} argc={} {ic}", op.a, op.b)
        }
        OpCode::InvokeNative => format!(
            "invokenative {} ({}) argc={}",
            op.a,
            program.native_imports.get(op.a as usize).map(|i| i.name.as_str()).unwrap_or("?"),
            op.b
        ),
        OpCode::Ret => "ret".into(),
        OpCode::RetVal => "retval".into(),
        OpCode::New => {
            format!("new {} ({})", op.a, program.classes[op.a as usize].name)
        }
        OpCode::GetField => format!("getfield {}", op.a),
        OpCode::PutField => format!("putfield {}", op.a),
        OpCode::GetStatic => {
            format!("getstatic {}.{}", program.classes[op.a as usize].name, op.b)
        }
        OpCode::PutStatic => {
            format!("putstatic {}.{}", program.classes[op.a as usize].name, op.b)
        }
        OpCode::ClassObj => format!("classobj {}", program.classes[op.a as usize].name),
        OpCode::NewArray => "newarray".into(),
        OpCode::ALoad => "aload".into(),
        OpCode::AStore => "astore".into(),
        OpCode::ALen => "alen".into(),
        OpCode::MonitorEnter => "monitorenter".into(),
        OpCode::MonitorExit => "monitorexit".into(),
        OpCode::Throw => "throw".into(),
        // Fused superinstruction reached directly (not via the listing's
        // constituent expansion): show the packed operands verbatim.
        fused => {
            format!("{fused:?} x{} a={} b={} imm={}", op.flags >> F_FUSE_SHIFT, op.a, op.b, op.imm)
        }
    }
}

/// Renders the decoded form of a program: the stream the `Fused` dispatch
/// engine executes, with quickened operands spelled out and each fused
/// superinstruction expanded into its constituent singles. Interior slots
/// of a fused region (still holding their quickened singles, reachable as
/// branch targets, snapshot resume points, or budget-fallback pcs) are
/// marked with `|`.
///
/// ```
/// use ftjvm_vm::program::ProgramBuilder;
/// use ftjvm_vm::disasm::disassemble_decoded;
///
/// let mut b = ProgramBuilder::new();
/// let mut m = b.method("main", 1);
/// let done = m.new_label();
/// m.push_i(3).store(0);
/// let top = m.bind_new_label();
/// m.load(0).if_not(done);
/// m.inc(0, -1).goto(top);
/// m.bind(done);
/// m.ret_void();
/// let entry = m.build(&mut b);
/// let p = b.build(entry)?;
/// let listing = disassemble_decoded(&p);
/// assert!(listing.contains("FSpin x4"));
/// # Ok::<(), ftjvm_vm::program::BuildError>(())
/// ```
pub fn disassemble_decoded(program: &Program) -> String {
    let d = DecodedProgram::build(program);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "decoded program: {} methods, {} inline-cache sites",
        d.methods.len(),
        d.n_ic_sites
    );
    for (mi, dm) in d.methods.iter().enumerate() {
        let m = &program.methods[mi];
        let _ = writeln!(out, "method {mi}: {} args={} locals={}", m.name, m.n_args, m.n_locals);
        let mut interior_until = 0usize;
        for (pc, op) in dm.fused.iter().enumerate() {
            let flen = (op.flags >> F_FUSE_SHIFT) as usize;
            if flen >= 2 {
                let parts: Vec<String> =
                    dm.quick[pc..pc + flen].iter().map(|c| dop_to_string(program, c)).collect();
                let _ = writeln!(out, "  {pc:4}: {:?} x{flen} {{ {} }}", op.code, parts.join("; "));
                interior_until = pc + flen;
            } else if pc < interior_until {
                let _ = writeln!(out, "  {pc:4}: | {}", dop_to_string(program, op));
            } else {
                let _ = writeln!(out, "  {pc:4}: {}", dop_to_string(program, op));
            }
        }
        for h in &m.handlers {
            let _ = writeln!(
                out,
                "  handler [{}, {}) -> @{} catch {:?}",
                h.start,
                h.end,
                h.target,
                h.class.map(|c| program.class(c).name.clone())
            );
        }
    }
    out
}

/// Renders a whole program.
pub fn disassemble(program: &Program) -> String {
    let mut out = String::new();
    for c in &program.classes {
        let _ = writeln!(
            out,
            "class {} ({}): super={:?} fields={} statics={}",
            c.id.0,
            c.name,
            c.super_class.map(|s| s.0),
            c.n_fields,
            c.n_statics
        );
        for (slot, m) in c.vtable.iter().enumerate() {
            if let Some(m) = m {
                let _ =
                    writeln!(out, "  vslot {slot} -> method {} ({})", m.0, program.method(*m).name);
            }
        }
        if let Some(fin) = c.finalizer {
            let _ = writeln!(out, "  finalizer -> method {}", fin.0);
        }
    }
    for m in &program.methods {
        let flags = match (m.is_static, m.synchronized) {
            (true, true) => " [static synchronized]",
            (true, false) => " [static]",
            (false, true) => " [synchronized]",
            (false, false) => "",
        };
        let _ = writeln!(
            out,
            "method {}: {}{} args={} locals={} returns={}{}",
            m.id.0,
            m.name,
            flags,
            m.n_args,
            m.n_locals,
            m.returns,
            if m.id == program.entry { "  <-- entry" } else { "" },
        );
        for (pc, i) in m.code.iter().enumerate() {
            let _ = writeln!(out, "  {pc:4}: {}", insn_to_string(program, i));
        }
        for h in &m.handlers {
            let _ = writeln!(
                out,
                "  handler [{}, {}) -> @{} catch {:?}",
                h.start,
                h.end,
                h.target,
                h.class.map(|c| program.class(c).name.clone())
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::builtin;
    use crate::program::ProgramBuilder;

    #[test]
    fn listing_covers_every_instruction_form() {
        let mut b = ProgramBuilder::new();
        let print = b.import_native("sys.print_int", 1, false);
        let cls = b.add_class("C", builtin::OBJECT, 1, 1);
        let slot = b.declare_vslot("run", 1, true);
        let mut run = b.method("C.run", 1);
        run.instance_of(cls).synchronized();
        run.push_i(1).ret_val();
        let run = run.build(&mut b);
        b.set_vtable(cls, slot, run);
        let s = b.intern("hi");
        let mut m = b.method("main", 1);
        let l = m.new_label();
        m.push_i(1).if_true(l);
        m.bind(l);
        m.const_str(s).pop();
        m.new_obj(cls).invoke_virtual(slot, 1).invoke_native(print, 1);
        m.class_obj(cls).monitor_enter();
        m.class_obj(cls).monitor_exit();
        m.push_i(0).put_static(cls, 0);
        m.get_static(cls, 0).pop();
        m.ret_void();
        let entry = m.build(&mut b);
        let p = b.build(entry).unwrap();
        let listing = disassemble(&p);
        for needle in [
            "class 4 (C)",
            "vslot 0 -> method 0 (C.run)",
            "[synchronized]",
            "<-- entry",
            "str \"hi\"",
            "invokevirtual slot=0 argc=1",
            "invokenative 0 (sys.print_int) argc=1",
            "monitorenter",
            "putstatic C.0",
            "classobj C",
        ] {
            assert!(listing.contains(needle), "missing {needle:?} in:\n{listing}");
        }
    }

    #[test]
    fn decoded_listing_expands_fused_ops_and_shows_quickening() {
        let mut b = ProgramBuilder::new();
        let cls = b.add_class("C", builtin::OBJECT, 0, 0);
        let slot = b.declare_vslot("run", 1, true);
        let mut run = b.method("C.run", 1);
        run.instance_of(cls);
        run.push_i(1).ret_val();
        let run = run.build(&mut b);
        b.set_vtable(cls, slot, run);
        let mut helper = b.method("helper", 2);
        helper.load(0).load(1).add().ret_val();
        let helper = helper.build(&mut b);
        let mut m = b.method("main", 1);
        let done = m.new_label();
        m.push_i(5).store(2);
        let top = m.bind_new_label();
        m.load(2).if_not(done);
        m.inc(2, -1).goto(top);
        m.bind(done);
        m.push_i(1).push_i(2).invoke(helper).pop();
        m.new_obj(cls).invoke_virtual(slot, 1).pop();
        m.ret_void();
        let entry = m.build(&mut b);
        let p = b.build(entry).unwrap();
        let listing = disassemble_decoded(&p);
        for needle in [
            "inline-cache sites",
            // The spin loop fuses whole; its interior singles stay listed
            // as the branch-target / budget-fallback stream.
            "FSpin x4 { load 2; ifnot @",
            "inc 2, -1",
            ": | ",
            // Quickened static call carries the callee frame shape.
            "(helper) [quick args=2 locals=2]",
            // Virtual site got an inline-cache id.
            "ic#0",
            // The `const 5; store 2` prologue fuses too.
            "FConstStore x2 { const 5; store 2 }",
        ] {
            assert!(listing.contains(needle), "missing {needle:?} in:\n{listing}");
        }
    }

    #[test]
    fn every_insn_variant_renders_nonempty() {
        let mut b = ProgramBuilder::new();
        let mut m = b.method("main", 1);
        m.ret_void();
        let entry = m.build(&mut b);
        let p = b.build(entry).unwrap();
        use crate::bytecode::{ClassId, Cmp, MethodId, NativeId, StrId, VSlot};
        let all = vec![
            Insn::Const(1),
            Insn::DConst(1.5),
            Insn::ConstNull,
            Insn::Dup,
            Insn::DupX1,
            Insn::Pop,
            Insn::Swap,
            Insn::Load(0),
            Insn::Store(0),
            Insn::Inc(0, 1),
            Insn::Add,
            Insn::Sub,
            Insn::Mul,
            Insn::Div,
            Insn::Rem,
            Insn::Neg,
            Insn::And,
            Insn::Or,
            Insn::Xor,
            Insn::Shl,
            Insn::Shr,
            Insn::DAdd,
            Insn::DSub,
            Insn::DMul,
            Insn::DDiv,
            Insn::I2D,
            Insn::D2I,
            Insn::ICmp(Cmp::Eq),
            Insn::DCmp(Cmp::Lt),
            Insn::RefEq,
            Insn::Goto(0),
            Insn::If(0),
            Insn::IfNot(0),
            Insn::IfNull(0),
            Insn::InvokeStatic(MethodId(0)),
            Insn::InvokeVirtual(VSlot(0), 1),
            Insn::InvokeNative(NativeId(0), 0),
            Insn::Ret,
            Insn::RetVal,
            Insn::New(ClassId(0)),
            Insn::GetField(0),
            Insn::PutField(0),
            Insn::GetStatic(ClassId(0), 0),
            Insn::PutStatic(ClassId(0), 0),
            Insn::ClassObj(ClassId(0)),
            Insn::NewArray,
            Insn::ALoad,
            Insn::AStore,
            Insn::ALen,
            Insn::MonitorEnter,
            Insn::MonitorExit,
            Insn::Throw,
            Insn::Nop,
            Insn::ConstStr(StrId(0)),
        ];
        // ConstStr(0) needs a string; intern one post-hoc is impossible on
        // a built program, so skip it if there are no strings.
        for i in all {
            if matches!(i, Insn::ConstStr(_)) && p.strings.is_empty() {
                continue;
            }
            if matches!(i, Insn::InvokeNative(..)) && p.native_imports.is_empty() {
                continue;
            }
            assert!(!insn_to_string(&p, &i).is_empty());
        }
    }
}
