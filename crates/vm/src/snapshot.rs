//! Deterministic VM state snapshots — the epoch-checkpoint substrate.
//!
//! A snapshot serializes *every* piece of mutable replica state — heap,
//! threads, monitors, statics, scheduler, environment volatile state,
//! time account, RNG stream positions — into one framed, CRC-sealed,
//! varint-compressed blob, such that
//! `restore(snapshot(vm))` yields a VM that continues execution
//! bit-for-bit identically to the original. The replication layer uses
//! this to cut epochs: the primary ships a snapshot plus the log suffix
//! since the cut, and a replacement backup resumes from exactly that
//! point instead of replaying the whole run.
//!
//! Two things are deliberately *not* in the blob:
//!
//! * the immutable program and the native registry — function pointers
//!   cannot be serialized; [`Vm::restore`] re-links them exactly like
//!   [`Vm::new`];
//! * the shared [`crate::env::World`] — stable environment state survives
//!   failures by definition (paper §3.4) and is owned by the pair, not a
//!   replica.
//!
//! Opaque *extension sections* (`Vec<(u8, Bytes)>`) travel inside the seal
//! so higher layers (the replication crate) can attach coordinator
//! counters, codec contexts, and side-effect-handler state without this
//! crate depending on them.
//!
//! # Quiescence
//!
//! A snapshot is refused ([`SnapshotError::Unsupported`]) while any thread
//! has an in-flight native activation: native scratch state may hold
//! adopted outcomes and phase closures whose replay records land *after*
//! the cut, so a mid-native cut could never be resumed consistently. The
//! driver checks [`Vm::quiescent`] and defers the cut to the next slice
//! boundary — natives are short, so quiescence recurs immediately.
//! Snapshots are also refused while the race detector is enabled (its
//! shadow state is diagnostic-only and intentionally unserializable).

use crate::class::Program;
use crate::coordinator::{SwitchReason, ThreadSnap};
use crate::env::SimEnv;
use crate::error::VmError;
use crate::exec::{ExecCounters, InternalLock, Vm, VmConfig};
use crate::heap::{Heap, HeapEntry};
use crate::monitor::{Monitor, MonitorTable, Waiter};
use crate::native::NativeRegistry;
use crate::thread::{Frame, ThreadIdx, ThreadKind, ThreadState, VmThread, WaitResume};
use crate::value::{ObjRef, Value};
use crate::vtid::VtPath;
use bytes::Bytes;
use ftjvm_netsim::{crc32c, SimTime, TimeAccount, WireError, WireReader, WireWriter};
use rand::rngs::StdRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// Magic bytes opening every snapshot blob.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"FTSN";

/// Snapshot format version.
pub const SNAPSHOT_VERSION: u8 = 1;

/// Why a snapshot could not be taken or restored.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The VM is in a state that cannot be snapshotted (in-flight native
    /// activation, race detector enabled). Retry at the next quiescent
    /// slice boundary.
    Unsupported(String),
    /// The blob is shorter than the fixed header.
    Truncated,
    /// The blob does not start with [`SNAPSHOT_MAGIC`].
    BadMagic,
    /// The blob's format version is not understood.
    BadVersion(u8),
    /// The CRC32C over the body does not match the sealed checksum — the
    /// blob was corrupted in flight or at rest.
    Crc {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed from the received bytes.
        computed: u32,
    },
    /// The body failed structural decoding despite a valid checksum.
    Malformed(String),
    /// Rebuilding the VM around the decoded state failed (e.g. native
    /// re-linking against a mismatched registry).
    Restore(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Unsupported(why) => write!(f, "snapshot unsupported here: {why}"),
            SnapshotError::Truncated => write!(f, "snapshot blob truncated"),
            SnapshotError::BadMagic => write!(f, "not a snapshot blob (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unknown snapshot version {v}"),
            SnapshotError::Crc { stored, computed } => {
                write!(f, "snapshot CRC mismatch: stored {stored:#010x}, computed {computed:#010x}")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot body: {what}"),
            SnapshotError::Restore(why) => write!(f, "snapshot restore failed: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<WireError> for SnapshotError {
    fn from(e: WireError) -> Self {
        SnapshotError::Malformed(e.to_string())
    }
}

// ---------------------------------------------------------------------------
// Field-level codec helpers.
// ---------------------------------------------------------------------------

fn put_value(w: &mut WireWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Int(i) => {
            w.put_u8(1);
            w.put_ivarint(*i);
        }
        Value::Double(d) => {
            w.put_u8(2);
            w.put_u64(d.to_bits());
        }
        Value::Ref(r) => {
            w.put_u8(3);
            w.put_uvarint(r.index() as u64);
        }
    }
}

fn get_value(r: &mut WireReader) -> Result<Value, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => Value::Null,
        1 => Value::Int(r.get_ivarint()?),
        2 => Value::Double(f64::from_bits(r.get_u64()?)),
        3 => Value::Ref(ObjRef::from_index(r.get_uvarint()? as usize)),
        t => return Err(SnapshotError::Malformed(format!("value tag {t}"))),
    })
}

fn put_values(w: &mut WireWriter, vs: &[Value]) {
    w.put_uvarint(vs.len() as u64);
    for v in vs {
        put_value(w, v);
    }
}

fn get_values(r: &mut WireReader) -> Result<Vec<Value>, SnapshotError> {
    let n = r.get_uvarint()? as usize;
    let mut out = Vec::new();
    for _ in 0..n {
        out.push(get_value(r)?);
    }
    Ok(out)
}

fn put_opt_u64(w: &mut WireWriter, v: Option<u64>) {
    match v {
        None => w.put_u8(0),
        Some(x) => {
            w.put_u8(1);
            w.put_uvarint(x);
        }
    }
}

fn get_opt_u64(r: &mut WireReader) -> Result<Option<u64>, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => Ok(Some(r.get_uvarint()?)),
        t => Err(SnapshotError::Malformed(format!("option tag {t}"))),
    }
}

fn put_opt_thread(w: &mut WireWriter, t: Option<ThreadIdx>) {
    put_opt_u64(w, t.map(|t| t.0 as u64));
}

fn get_opt_thread(r: &mut WireReader) -> Result<Option<ThreadIdx>, SnapshotError> {
    Ok(get_opt_u64(r)?.map(|v| ThreadIdx(v as u32)))
}

fn put_opt_obj(w: &mut WireWriter, o: Option<ObjRef>) {
    put_opt_u64(w, o.map(|r| r.index() as u64));
}

fn get_opt_obj(r: &mut WireReader) -> Result<Option<ObjRef>, SnapshotError> {
    Ok(get_opt_u64(r)?.map(|v| ObjRef::from_index(v as usize)))
}

fn put_opt_vt(w: &mut WireWriter, vt: Option<&VtPath>) {
    match vt {
        None => w.put_u8(0),
        Some(p) => {
            w.put_u8(1);
            let ords = p.ordinals();
            w.put_uvarint(ords.len() as u64);
            for o in ords {
                w.put_uvarint(*o as u64);
            }
        }
    }
}

fn get_opt_vt(r: &mut WireReader) -> Result<Option<VtPath>, SnapshotError> {
    match r.get_u8()? {
        0 => Ok(None),
        1 => {
            let n = r.get_uvarint()? as usize;
            if n == 0 {
                return Err(SnapshotError::Malformed("empty vt path".into()));
            }
            let mut ords = Vec::new();
            for _ in 0..n {
                ords.push(r.get_uvarint()? as u32);
            }
            Ok(Some(VtPath::from_ordinals(ords)))
        }
        t => Err(SnapshotError::Malformed(format!("vt tag {t}"))),
    }
}

fn switch_reason_tag(r: SwitchReason) -> u8 {
    match r {
        SwitchReason::Quantum => 0,
        SwitchReason::ReplayPoint => 1,
        SwitchReason::BlockedMonitor => 2,
        SwitchReason::Waiting => 3,
        SwitchReason::Deferred => 4,
        SwitchReason::DeferredNative => 5,
        SwitchReason::Internal => 6,
        SwitchReason::Sleep => 7,
        SwitchReason::Yield => 8,
        SwitchReason::Exit => 9,
    }
}

fn switch_reason_from(tag: u8) -> Result<SwitchReason, SnapshotError> {
    Ok(match tag {
        0 => SwitchReason::Quantum,
        1 => SwitchReason::ReplayPoint,
        2 => SwitchReason::BlockedMonitor,
        3 => SwitchReason::Waiting,
        4 => SwitchReason::Deferred,
        5 => SwitchReason::DeferredNative,
        6 => SwitchReason::Internal,
        7 => SwitchReason::Sleep,
        8 => SwitchReason::Yield,
        9 => SwitchReason::Exit,
        t => return Err(SnapshotError::Malformed(format!("switch reason tag {t}"))),
    })
}

fn put_state(w: &mut WireWriter, s: &ThreadState) {
    match s {
        ThreadState::Runnable => w.put_u8(0),
        ThreadState::BlockedMonitor { obj } => {
            w.put_u8(1);
            w.put_uvarint(obj.index() as u64);
        }
        ThreadState::WaitingMonitor { obj } => {
            w.put_u8(2);
            w.put_uvarint(obj.index() as u64);
        }
        ThreadState::DeferredMonitor { obj } => {
            w.put_u8(3);
            w.put_uvarint(obj.index() as u64);
        }
        ThreadState::DeferredNative => w.put_u8(4),
        ThreadState::BlockedInternal => w.put_u8(5),
        ThreadState::Sleeping { until } => {
            w.put_u8(6);
            w.put_uvarint(until.as_nanos());
        }
        ThreadState::Parked => w.put_u8(7),
        ThreadState::Terminated => w.put_u8(8),
    }
}

fn get_state(r: &mut WireReader) -> Result<ThreadState, SnapshotError> {
    Ok(match r.get_u8()? {
        0 => ThreadState::Runnable,
        1 => ThreadState::BlockedMonitor { obj: ObjRef::from_index(r.get_uvarint()? as usize) },
        2 => ThreadState::WaitingMonitor { obj: ObjRef::from_index(r.get_uvarint()? as usize) },
        3 => ThreadState::DeferredMonitor { obj: ObjRef::from_index(r.get_uvarint()? as usize) },
        4 => ThreadState::DeferredNative,
        5 => ThreadState::BlockedInternal,
        6 => ThreadState::Sleeping { until: SimTime::from_nanos(r.get_uvarint()?) },
        7 => ThreadState::Parked,
        8 => ThreadState::Terminated,
        t => return Err(SnapshotError::Malformed(format!("thread state tag {t}"))),
    })
}

fn put_thread_snap(w: &mut WireWriter, s: &ThreadSnap) {
    w.put_uvarint(s.t.0 as u64);
    put_opt_vt(w, s.vt.as_ref());
    w.put_uvarint(s.br_cnt);
    w.put_uvarint(s.mon_cnt);
    w.put_uvarint(s.t_asn);
    put_opt_u64(w, s.method.map(|m| m.0 as u64));
    w.put_uvarint(s.pc as u64);
    w.put_u8(s.in_native as u8);
    w.put_uvarint(s.blocked_lasn);
}

fn get_thread_snap(r: &mut WireReader) -> Result<ThreadSnap, SnapshotError> {
    Ok(ThreadSnap {
        t: ThreadIdx(r.get_uvarint()? as u32),
        vt: get_opt_vt(r)?,
        br_cnt: r.get_uvarint()?,
        mon_cnt: r.get_uvarint()?,
        t_asn: r.get_uvarint()?,
        method: get_opt_u64(r)?.map(|m| crate::bytecode::MethodId(m as u32)),
        pc: r.get_uvarint()? as u32,
        in_native: r.get_u8()? != 0,
        blocked_lasn: r.get_uvarint()?,
    })
}

// ---------------------------------------------------------------------------
// Snapshot (encode).
// ---------------------------------------------------------------------------

fn encode_body(vm: &Vm, ext: &[(u8, Bytes)]) -> Bytes {
    let core = vm.core();
    let mut w = WireWriter::with_capacity(4096);

    // 1. Environment volatile state.
    let env = &core.env;
    w.put_vstr(&env.replica);
    w.put_uvarint(env.clock_skew.as_nanos());
    w.put_u64(env.rng_state());
    w.put_uvarint(env.peek_next_vfd());
    w.put_uvarint(env.peek_next_sd());
    let files: Vec<_> = env.open_files().collect();
    w.put_uvarint(files.len() as u64);
    for (vfd, f) in files {
        w.put_uvarint(vfd);
        w.put_vstr(&f.name);
        w.put_uvarint(f.offset as u64);
    }
    let socks: Vec<_> = env.open_sockets().collect();
    w.put_uvarint(socks.len() as u64);
    for (sd, c) in socks {
        w.put_uvarint(sd);
        w.put_vstr(&c.peer);
        w.put_uvarint(c.sent);
    }

    // 2. Time account.
    let (now, totals) = core.acct.snapshot_parts();
    w.put_uvarint(now.as_nanos());
    for t in totals {
        w.put_uvarint(t.as_nanos());
    }

    // 3. Heap (holes included, so slot indices and the free list survive).
    let heap = &core.heap;
    w.put_uvarint(heap.capacity as u64);
    w.put_uvarint(heap.gc_threshold as u64);
    w.put_uvarint(heap.live as u64);
    w.put_uvarint(heap.allocs_since_gc as u64);
    w.put_uvarint(heap.total_allocs);
    w.put_uvarint(heap.slots.len() as u64);
    for slot in &heap.slots {
        match slot {
            None => w.put_u8(0),
            Some(HeapEntry::Obj { class, fields }) => {
                w.put_u8(1);
                w.put_uvarint(class.0 as u64);
                put_values(&mut w, fields);
            }
            Some(HeapEntry::Arr { elems }) => {
                w.put_u8(2);
                put_values(&mut w, elems);
            }
        }
    }
    w.put_uvarint(heap.free.len() as u64);
    for i in &heap.free {
        w.put_uvarint(*i as u64);
    }
    w.put_uvarint(heap.finalizer_done.len() as u64);
    for b in &heap.finalizer_done {
        w.put_u8(*b as u8);
    }

    // 4. Statics.
    w.put_uvarint(core.statics.len() as u64);
    for class_statics in &core.statics {
        put_values(&mut w, class_statics);
    }

    // 5. Class lock objects.
    w.put_uvarint(core.class_objects.len() as u64);
    for r in &core.class_objects {
        w.put_uvarint(r.index() as u64);
    }

    // 6. Monitors, sorted by object so the blob is a deterministic
    //    function of VM state (the map itself has no stable order).
    let mut monitors: Vec<(&ObjRef, &Monitor)> = core.monitors.map.iter().collect();
    monitors.sort_by_key(|(obj, _)| **obj);
    w.put_uvarint(monitors.len() as u64);
    for (obj, m) in monitors {
        w.put_uvarint(obj.index() as u64);
        put_opt_thread(&mut w, m.owner);
        w.put_uvarint(m.recursion as u64);
        w.put_uvarint(m.entry_queue.len() as u64);
        for t in &m.entry_queue {
            w.put_uvarint(t.0 as u64);
        }
        w.put_uvarint(m.wait_set.len() as u64);
        for waiter in &m.wait_set {
            w.put_uvarint(waiter.thread.0 as u64);
            w.put_uvarint(waiter.saved_recursion as u64);
        }
        w.put_uvarint(m.l_asn);
        put_opt_u64(&mut w, m.l_id);
    }

    // 7. Threads (quiescence guarantees `native` is None everywhere).
    w.put_uvarint(core.threads.len() as u64);
    for th in &core.threads {
        w.put_uvarint(th.idx.0 as u64);
        w.put_u8(match th.kind {
            ThreadKind::App => 0,
            ThreadKind::GcWorker => 1,
            ThreadKind::Finalizer => 2,
        });
        put_opt_vt(&mut w, th.vt.as_ref());
        put_state(&mut w, &th.state);
        w.put_uvarint(th.frames.len() as u64);
        for f in &th.frames {
            w.put_uvarint(f.method.0 as u64);
            w.put_uvarint(f.pc as u64);
            put_values(&mut w, &f.locals);
            put_values(&mut w, &f.stack);
            put_opt_obj(&mut w, f.sync_obj);
        }
        w.put_uvarint(th.br_cnt);
        w.put_uvarint(th.mon_cnt);
        w.put_uvarint(th.t_asn);
        w.put_uvarint(th.children as u64);
        put_opt_u64(&mut w, th.wait_resume.map(|wr| wr.saved_recursion as u64));
        put_opt_obj(&mut w, th.unwinding);
    }

    // 8. Scheduler: run queue, dispatched thread, quantum, RNG, units.
    w.put_uvarint(core.run_queue.len() as u64);
    for t in &core.run_queue {
        w.put_uvarint(t.0 as u64);
    }
    put_opt_thread(&mut w, core.current);
    w.put_uvarint(core.quantum_left as u64);
    w.put_u64(core.sched_rng.state());
    w.put_u8(core.yield_requested as u8);
    w.put_uvarint(core.units);

    // 9. GC machinery.
    w.put_u8(core.gc_requested as u8);
    w.put_u8(core.gc_phase);
    put_opt_thread(&mut w, core.gc_thread);
    put_opt_thread(&mut w, core.finalizer_thread);
    w.put_uvarint(core.finalizer_queue.len() as u64);
    for r in &core.finalizer_queue {
        w.put_uvarint(r.index() as u64);
    }

    // 10. Counters.
    let c = &core.counters;
    for v in [
        c.instructions,
        c.branches,
        c.monitor_acquires,
        c.monitor_ops,
        c.native_calls,
        c.outputs,
        c.allocations,
        c.gc_runs,
        c.context_switches,
        c.objects_locked,
        c.spawns,
    ] {
        w.put_uvarint(v);
    }

    // 11. Uncaught-exception exits.
    w.put_uvarint(core.uncaught.len() as u64);
    for (vt, code) in &core.uncaught {
        put_opt_vt(&mut w, vt.as_ref());
        w.put_ivarint(*code);
    }

    // 12. Pending context switch.
    match &core.pending_switch {
        None => w.put_u8(0),
        Some((snap, reason)) => {
            w.put_u8(1);
            put_thread_snap(&mut w, snap);
            w.put_u8(switch_reason_tag(*reason));
        }
    }

    // 13. Internal (non-Java) locks.
    w.put_uvarint(core.internal_locks.len() as u64);
    for lock in &core.internal_locks {
        put_opt_thread(&mut w, lock.holder);
        w.put_uvarint(lock.waiters.len() as u64);
        for t in &lock.waiters {
            w.put_uvarint(t.0 as u64);
        }
    }

    // 14. Opaque extension sections.
    w.put_uvarint(ext.len() as u64);
    for (tag, payload) in ext {
        w.put_u8(*tag);
        w.put_vbytes(payload);
    }

    w.finish()
}

// ---------------------------------------------------------------------------
// Restore (decode).
// ---------------------------------------------------------------------------

struct DecodedEnv {
    replica: String,
    clock_skew: SimTime,
    rng_state: u64,
    next_vfd: u64,
    next_sd: u64,
    files: Vec<(u64, String, usize)>,
    socks: Vec<(u64, String, u64)>,
}

fn decode_env(r: &mut WireReader) -> Result<DecodedEnv, SnapshotError> {
    let replica = r.get_vstr()?;
    let clock_skew = SimTime::from_nanos(r.get_uvarint()?);
    let rng_state = r.get_u64()?;
    let next_vfd = r.get_uvarint()?;
    let next_sd = r.get_uvarint()?;
    let n_files = r.get_uvarint()? as usize;
    let mut files = Vec::new();
    for _ in 0..n_files {
        let vfd = r.get_uvarint()?;
        let name = r.get_vstr()?;
        let offset = r.get_uvarint()? as usize;
        files.push((vfd, name, offset));
    }
    let n_socks = r.get_uvarint()? as usize;
    let mut socks = Vec::new();
    for _ in 0..n_socks {
        let sd = r.get_uvarint()?;
        let peer = r.get_vstr()?;
        let sent = r.get_uvarint()?;
        socks.push((sd, peer, sent));
    }
    Ok(DecodedEnv { replica, clock_skew, rng_state, next_vfd, next_sd, files, socks })
}

impl Vm {
    /// True when the VM is at a point where [`Vm::snapshot`] will succeed:
    /// no thread holds an in-flight native activation and the race
    /// detector is off. Epoch drivers poll this at slice boundaries and
    /// defer cuts until it holds.
    pub fn quiescent(&self) -> bool {
        let core = self.core();
        core.race.is_none() && core.threads.iter().all(|t| t.native.is_none())
    }

    /// Serializes the VM's complete mutable state into a framed,
    /// CRC-sealed blob, attaching the caller's opaque extension sections.
    ///
    /// # Errors
    /// Returns [`SnapshotError::Unsupported`] when the VM is not
    /// [quiescent](Vm::quiescent).
    pub fn snapshot(&self, ext: &[(u8, Bytes)]) -> Result<Bytes, SnapshotError> {
        let core = self.core();
        if core.race.is_some() {
            return Err(SnapshotError::Unsupported(
                "race detector shadow state is not serializable".into(),
            ));
        }
        if let Some(th) = core.threads.iter().find(|t| t.native.is_some()) {
            return Err(SnapshotError::Unsupported(format!(
                "thread {} has an in-flight native activation",
                th.idx
            )));
        }
        let body = encode_body(self, ext);
        let mut w = WireWriter::with_capacity(body.len() + 9);
        w.put_raw(SNAPSHOT_MAGIC);
        w.put_u8(SNAPSHOT_VERSION);
        w.put_u32(crc32c(&body));
        w.put_raw(&body);
        Ok(w.finish())
    }

    /// Rebuilds a VM from a snapshot blob, re-linking `program` and
    /// `natives` and attaching the restored replica to `world`. Returns
    /// the VM plus the extension sections stored by [`Vm::snapshot`].
    ///
    /// `cfg` supplies the *immutable* configuration (cost model, budgets);
    /// all mutable state — including the scheduler RNG position — comes
    /// from the blob, so a restored VM continues bit-for-bit.
    ///
    /// # Errors
    /// Returns a [`SnapshotError`] on a truncated, corrupted, or
    /// malformed blob, and [`SnapshotError::Restore`] when the VM cannot
    /// be rebuilt (e.g. `natives` no longer resolves the program's
    /// imports).
    pub fn restore(
        program: Arc<Program>,
        natives: NativeRegistry,
        world: crate::env::SharedWorld,
        cfg: &VmConfig,
        blob: &[u8],
    ) -> Result<(Vm, Vec<(u8, Bytes)>), SnapshotError> {
        if cfg.race_detect {
            return Err(SnapshotError::Unsupported(
                "cannot restore a snapshot into a race-detecting VM".into(),
            ));
        }
        if blob.len() < 9 {
            return Err(SnapshotError::Truncated);
        }
        if &blob[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if blob[4] != SNAPSHOT_VERSION {
            return Err(SnapshotError::BadVersion(blob[4]));
        }
        let stored = u32::from_le_bytes([blob[5], blob[6], blob[7], blob[8]]);
        let body = &blob[9..];
        let computed = crc32c(body);
        if stored != computed {
            return Err(SnapshotError::Crc { stored, computed });
        }
        let mut r = WireReader::new(Bytes::from(body.to_vec()));

        // 1. Environment.
        let de = decode_env(&mut r)?;
        let mut env = SimEnv::new(&de.replica, world, de.clock_skew, 0);
        env.set_rng_state(de.rng_state);
        for (vfd, name, offset) in &de.files {
            env.restore_open_file(*vfd, name, *offset);
        }
        env.set_next_vfd(de.next_vfd);
        for (sd, peer, sent) in &de.socks {
            env.restore_socket(*sd, peer, *sent);
        }
        env.set_next_sd(de.next_sd);

        // 2. Time account.
        let now = SimTime::from_nanos(r.get_uvarint()?);
        let mut totals = [SimTime::ZERO; 6];
        for t in &mut totals {
            *t = SimTime::from_nanos(r.get_uvarint()?);
        }
        let acct = TimeAccount::from_parts(now, totals);

        // 3. Heap.
        let capacity = r.get_uvarint()? as usize;
        let gc_threshold = r.get_uvarint()? as usize;
        let mut heap = Heap::new(capacity, gc_threshold);
        heap.live = r.get_uvarint()? as usize;
        heap.allocs_since_gc = r.get_uvarint()? as usize;
        heap.total_allocs = r.get_uvarint()?;
        let n_slots = r.get_uvarint()? as usize;
        for _ in 0..n_slots {
            heap.slots.push(match r.get_u8()? {
                0 => None,
                1 => {
                    let class = crate::bytecode::ClassId(r.get_uvarint()? as u16);
                    let fields = get_values(&mut r)?;
                    Some(HeapEntry::Obj { class, fields })
                }
                2 => Some(HeapEntry::Arr { elems: get_values(&mut r)? }),
                t => return Err(SnapshotError::Malformed(format!("heap slot tag {t}"))),
            });
        }
        let n_free = r.get_uvarint()? as usize;
        for _ in 0..n_free {
            heap.free.push(r.get_uvarint()? as u32);
        }
        let n_fin = r.get_uvarint()? as usize;
        for _ in 0..n_fin {
            heap.finalizer_done.push(r.get_u8()? != 0);
        }

        // 4. Statics.
        let n_statics = r.get_uvarint()? as usize;
        let mut statics = Vec::new();
        for _ in 0..n_statics {
            statics.push(get_values(&mut r)?);
        }

        // 5. Class lock objects.
        let n_classes = r.get_uvarint()? as usize;
        let mut class_objects = Vec::new();
        for _ in 0..n_classes {
            class_objects.push(ObjRef::from_index(r.get_uvarint()? as usize));
        }

        // 6. Monitors.
        let mut monitors = MonitorTable::new();
        let n_mons = r.get_uvarint()? as usize;
        for _ in 0..n_mons {
            let obj = ObjRef::from_index(r.get_uvarint()? as usize);
            let owner = get_opt_thread(&mut r)?;
            let recursion = r.get_uvarint()? as u32;
            let n_entry = r.get_uvarint()? as usize;
            let mut entry_queue = VecDeque::new();
            for _ in 0..n_entry {
                entry_queue.push_back(ThreadIdx(r.get_uvarint()? as u32));
            }
            let n_wait = r.get_uvarint()? as usize;
            let mut wait_set = VecDeque::new();
            for _ in 0..n_wait {
                let thread = ThreadIdx(r.get_uvarint()? as u32);
                let saved_recursion = r.get_uvarint()? as u32;
                wait_set.push_back(Waiter { thread, saved_recursion });
            }
            let l_asn = r.get_uvarint()?;
            let l_id = get_opt_u64(&mut r)?;
            monitors
                .map
                .insert(obj, Monitor { owner, recursion, entry_queue, wait_set, l_asn, l_id });
        }

        // 7. Threads.
        let n_threads = r.get_uvarint()? as usize;
        let mut threads = Vec::new();
        for _ in 0..n_threads {
            let idx = ThreadIdx(r.get_uvarint()? as u32);
            let kind = match r.get_u8()? {
                0 => ThreadKind::App,
                1 => ThreadKind::GcWorker,
                2 => ThreadKind::Finalizer,
                t => return Err(SnapshotError::Malformed(format!("thread kind tag {t}"))),
            };
            let vt = get_opt_vt(&mut r)?;
            let state = get_state(&mut r)?;
            let n_frames = r.get_uvarint()? as usize;
            let mut frames = Vec::new();
            for _ in 0..n_frames {
                let method = crate::bytecode::MethodId(r.get_uvarint()? as u32);
                let pc = r.get_uvarint()? as u32;
                let locals = get_values(&mut r)?;
                let stack = get_values(&mut r)?;
                let sync_obj = get_opt_obj(&mut r)?;
                frames.push(Frame { method, pc, locals, stack, sync_obj });
            }
            let br_cnt = r.get_uvarint()?;
            let mon_cnt = r.get_uvarint()?;
            let t_asn = r.get_uvarint()?;
            let children = r.get_uvarint()? as u32;
            let wait_resume =
                get_opt_u64(&mut r)?.map(|v| WaitResume { saved_recursion: v as u32 });
            let unwinding = get_opt_obj(&mut r)?;
            threads.push(VmThread {
                idx,
                kind,
                vt,
                state,
                frames,
                br_cnt,
                mon_cnt,
                t_asn,
                children,
                native: None,
                wait_resume,
                unwinding,
                held_for_race: Vec::new(),
            });
        }

        // 8. Scheduler.
        let n_queue = r.get_uvarint()? as usize;
        let mut run_queue = VecDeque::new();
        for _ in 0..n_queue {
            run_queue.push_back(ThreadIdx(r.get_uvarint()? as u32));
        }
        let current = get_opt_thread(&mut r)?;
        let quantum_left = r.get_uvarint()? as u32;
        let sched_rng = StdRng::from_state(r.get_u64()?);
        let yield_requested = r.get_u8()? != 0;
        let units = r.get_uvarint()?;

        // 9. GC machinery.
        let gc_requested = r.get_u8()? != 0;
        let gc_phase = r.get_u8()?;
        let gc_thread = get_opt_thread(&mut r)?;
        let finalizer_thread = get_opt_thread(&mut r)?;
        let n_finq = r.get_uvarint()? as usize;
        let mut finalizer_queue = VecDeque::new();
        for _ in 0..n_finq {
            finalizer_queue.push_back(ObjRef::from_index(r.get_uvarint()? as usize));
        }

        // 10. Counters.
        let mut counter_vals = [0u64; 11];
        for v in &mut counter_vals {
            *v = r.get_uvarint()?;
        }
        let counters = ExecCounters {
            instructions: counter_vals[0],
            branches: counter_vals[1],
            monitor_acquires: counter_vals[2],
            monitor_ops: counter_vals[3],
            native_calls: counter_vals[4],
            outputs: counter_vals[5],
            allocations: counter_vals[6],
            gc_runs: counter_vals[7],
            context_switches: counter_vals[8],
            objects_locked: counter_vals[9],
            spawns: counter_vals[10],
        };

        // 11. Uncaught exits.
        let n_unc = r.get_uvarint()? as usize;
        let mut uncaught = Vec::new();
        for _ in 0..n_unc {
            let vt = get_opt_vt(&mut r)?;
            let code = r.get_ivarint()?;
            uncaught.push((vt, code));
        }

        // 12. Pending switch.
        let pending_switch = match r.get_u8()? {
            0 => None,
            1 => {
                let snap = get_thread_snap(&mut r)?;
                let reason = switch_reason_from(r.get_u8()?)?;
                Some((snap, reason))
            }
            t => return Err(SnapshotError::Malformed(format!("pending switch tag {t}"))),
        };

        // 13. Internal locks.
        let n_locks = r.get_uvarint()? as usize;
        let mut internal_locks = Vec::new();
        for _ in 0..n_locks {
            let holder = get_opt_thread(&mut r)?;
            let n_waiters = r.get_uvarint()? as usize;
            let mut waiters = Vec::new();
            for _ in 0..n_waiters {
                waiters.push(ThreadIdx(r.get_uvarint()? as u32));
            }
            internal_locks.push(InternalLock { holder, waiters });
        }

        // 14. Extension sections.
        let n_ext = r.get_uvarint()? as usize;
        let mut ext = Vec::new();
        for _ in 0..n_ext {
            let tag = r.get_u8()?;
            let payload = r.get_vbytes()?;
            ext.push((tag, payload));
        }
        if !r.is_empty() {
            return Err(SnapshotError::Malformed(format!(
                "{} trailing bytes after snapshot body",
                r.remaining()
            )));
        }

        // Rebuild the VM shell (links natives, validates the program) and
        // transplant the decoded state over it wholesale.
        let restore_cfg = VmConfig { race_detect: false, ..cfg.clone() };
        let mut vm = Vm::new(program, natives, env, restore_cfg)
            .map_err(|e: VmError| SnapshotError::Restore(e.to_string()))?;
        let core = vm.core_mut();
        core.heap = heap;
        core.monitors = monitors;
        core.statics = statics;
        core.class_objects = class_objects;
        core.threads = threads;
        core.run_queue = run_queue;
        core.current = current;
        core.acct = acct;
        core.counters = counters;
        core.uncaught = uncaught;
        core.finalizer_queue = finalizer_queue;
        core.quantum_left = quantum_left;
        core.sched_rng = sched_rng;
        core.internal_locks = internal_locks;
        core.gc_requested = gc_requested;
        core.gc_phase = gc_phase;
        core.gc_thread = gc_thread;
        core.finalizer_thread = finalizer_thread;
        core.pending_switch = pending_switch;
        core.yield_requested = yield_requested;
        core.units = units;
        Ok((vm, ext))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coordinator::NoopCoordinator;
    use crate::env::World;
    use crate::exec::SliceOutcome;
    use crate::program::ProgramBuilder;
    use ftjvm_netsim::SimTime;

    /// A workload exercising monitors, spawned threads, ND natives
    /// (clock + rand), sleeps, and console output — everything a snapshot
    /// must carry — without reading stable state back (so a continuation
    /// on a fresh world stays comparable).
    fn busy_program() -> Arc<Program> {
        let mut b = ProgramBuilder::new();
        let print_int = b.import_native("sys.print_int", 1, false);
        let clock = b.import_native("sys.clock", 0, true);
        let rand = b.import_native("sys.rand", 1, true);
        let spawn = b.import_native("sys.spawn", 2, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        let cls = b.add_class("snap/Counter", crate::class::builtin::OBJECT, 0, 2);

        let mut inc = b.method("inc", 1);
        inc.static_of(cls).synchronized();
        inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
        let inc = inc.build(&mut b);

        let mut fin = b.method("finish", 1);
        fin.static_of(cls).synchronized();
        fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
        let fin = fin.build(&mut b);

        let mut w = b.method("worker", 1);
        let done = w.new_label();
        w.push_i(40).store(1);
        let top = w.bind_new_label();
        w.load(1).if_not(done);
        w.push_i(0).invoke(inc);
        w.invoke_native(clock, 0).push_i(7).rem().pop();
        w.push_i(5).invoke_native(rand, 1).pop();
        w.inc(1, -1).goto(top);
        w.bind(done).push_i(0).invoke(fin).ret_void();
        let w = w.build(&mut b);

        let mut m = b.method("main", 1);
        m.push_i(0).put_static(cls, 0);
        m.push_i(0).put_static(cls, 1);
        for _ in 0..3 {
            m.push_method(w).push_i(0).invoke_native(spawn, 2);
        }
        let wait_loop = m.bind_new_label();
        let ready = m.new_label();
        m.get_static(cls, 1).push_i(3).icmp(crate::bytecode::Cmp::Eq).if_true(ready);
        m.invoke_native(yield_n, 0).goto(wait_loop);
        m.bind(ready);
        m.get_static(cls, 0).invoke_native(print_int, 1);
        m.push_i(3).invoke_native(rand, 1).invoke_native(print_int, 1);
        m.ret_void();
        let entry = m.build(&mut b);
        Arc::new(b.build(entry).expect("busy program verifies"))
    }

    fn cfg() -> VmConfig {
        VmConfig { quantum: 50, quantum_jitter: 30, ..VmConfig::default() }
    }

    /// Runs until at least `min_units` have elapsed AND the VM is
    /// quiescent, or the program completes. Returns true if still running.
    fn run_until_cut(vm: &mut Vm, min_units: u64) -> bool {
        let mut coord = NoopCoordinator::new();
        loop {
            match vm.run_slice(&mut coord, 64).expect("runs") {
                SliceOutcome::Budget | SliceOutcome::Paused => {
                    vm.poll_suspended(&mut coord);
                    if vm.core().units >= min_units && vm.quiescent() {
                        return true;
                    }
                }
                SliceOutcome::Completed(_) | SliceOutcome::Stopped(_) => return false,
            }
        }
    }

    fn finish(vm: &mut Vm) -> crate::exec::RunReport {
        let mut coord = NoopCoordinator::new();
        vm.run(&mut coord).expect("completes")
    }

    #[test]
    fn restore_then_resnapshot_is_byte_identical() {
        let program = busy_program();
        let world = World::shared();
        let env = SimEnv::new("p", world, SimTime::ZERO, 7);
        let mut vm = Vm::new(program.clone(), NativeRegistry::with_builtins(), env, cfg()).unwrap();
        assert!(run_until_cut(&mut vm, 400), "program finished before the cut");

        let ext = vec![(9u8, Bytes::from(vec![1, 2, 3])), (200u8, Bytes::new())];
        let blob = vm.snapshot(&ext).expect("snapshot at quiescent point");

        let world2 = World::shared();
        let (vm2, ext2) =
            Vm::restore(program, NativeRegistry::with_builtins(), world2, &cfg(), &blob)
                .expect("restores");
        assert_eq!(ext2, ext);
        let blob2 = vm2.snapshot(&ext).expect("re-snapshot");
        assert_eq!(blob, blob2, "snapshot is not a deterministic fixpoint");
    }

    #[test]
    fn restored_vm_continues_bit_for_bit() {
        let program = busy_program();
        let world1 = World::shared();
        let env = SimEnv::new("p", world1.clone(), SimTime::from_micros(3), 7);
        let mut vm1 =
            Vm::new(program.clone(), NativeRegistry::with_builtins(), env, cfg()).unwrap();
        assert!(run_until_cut(&mut vm1, 400), "program finished before the cut");
        let blob = vm1.snapshot(&[]).expect("snapshot");
        let console_at_cut = world1.borrow().console_texts().len();

        let report1 = finish(&mut vm1);

        let world2 = World::shared();
        let (mut vm2, _) =
            Vm::restore(program, NativeRegistry::with_builtins(), world2.clone(), &cfg(), &blob)
                .expect("restores");
        let report2 = finish(&mut vm2);

        let full = world1.borrow().console_texts();
        assert_eq!(world2.borrow().console_texts(), full[console_at_cut..].to_vec());
        assert_eq!(report1.counters, report2.counters);
        assert_eq!(report1.acct.now(), report2.acct.now());
        assert_eq!(vm1.core().units, vm2.core().units);
    }

    #[test]
    fn corrupt_blobs_are_rejected() {
        let program = busy_program();
        let env = SimEnv::new("p", World::shared(), SimTime::ZERO, 7);
        let mut vm = Vm::new(program.clone(), NativeRegistry::with_builtins(), env, cfg()).unwrap();
        run_until_cut(&mut vm, 200);
        let blob = vm.snapshot(&[]).expect("snapshot");

        let restore = |bytes: &[u8]| {
            Vm::restore(
                program.clone(),
                NativeRegistry::with_builtins(),
                World::shared(),
                &cfg(),
                bytes,
            )
            .map(|_| ())
        };

        assert_eq!(restore(&blob[..4]), Err(SnapshotError::Truncated));
        let mut bad = blob.to_vec();
        bad[0] ^= 0xFF;
        assert_eq!(restore(&bad), Err(SnapshotError::BadMagic));
        let mut bad = blob.to_vec();
        bad[4] = 99;
        assert_eq!(restore(&bad), Err(SnapshotError::BadVersion(99)));
        for pos in [9, blob.len() / 2, blob.len() - 1] {
            let mut bad = blob.to_vec();
            bad[pos] ^= 0x10;
            assert!(
                matches!(restore(&bad), Err(SnapshotError::Crc { .. })),
                "flip at {pos} must fail the checksum"
            );
        }
        assert!(matches!(restore(&blob[..blob.len() - 3]), Err(SnapshotError::Crc { .. })));
    }

    #[test]
    fn snapshot_refused_mid_native_and_under_race_detection() {
        let program = busy_program();
        let env = SimEnv::new("p", World::shared(), SimTime::ZERO, 7);
        let race_cfg = VmConfig { race_detect: true, ..cfg() };
        let vm = Vm::new(program, NativeRegistry::with_builtins(), env, race_cfg).unwrap();
        assert!(!vm.quiescent());
        assert!(matches!(vm.snapshot(&[]), Err(SnapshotError::Unsupported(_))));
    }
}
