//! A from-scratch, JVM-shaped bytecode virtual machine — the substrate on
//! which the fault-tolerant replication layer (`ftjvm-core`) runs.
//!
//! This crate is the stand-in for the Sun JDK 1.2 interpreter that the DSN
//! 2003 paper *A Fault-Tolerant Java Virtual Machine* (Napper, Alvisi, Vin)
//! modified. It provides the abstractions the paper's mechanisms operate
//! on:
//!
//! * a stack-based **bytecode ISA** with classes, virtual dispatch, arrays,
//!   exceptions ([`bytecode`], [`class`], [`program`]);
//! * a **green-thread scheduler** with injected (seeded) preemption jitter —
//!   the source of scheduling non-determinism replication must mask
//!   ([`exec`]);
//! * re-entrant **monitors** with `wait`/`notify` and the paper's per-lock
//!   (`l_asn`, `l_id`) bookkeeping ([`monitor`]);
//! * per-thread **progress counters** (`br_cnt`, `mon_cnt`, `t_asn`)
//!   ([`thread`]) and scheduling-stable **virtual thread ids** ([`vtid`]);
//! * a **native-method interface** with the paper's annotations
//!   (non-deterministic / output / volatile-state) and preemptible phased
//!   natives ([`native`]);
//! * a **mark-sweep GC** with soft references and finalizers, plus GC and
//!   finalizer *system threads* that contend with application threads
//!   ([`heap`]);
//! * a simulated **environment** split into stable and volatile state
//!   ([`mod@env`]);
//! * the [`coordinator::Coordinator`] hook trait — the exact seam where the
//!   paper patched Sun's JVM, and where `ftjvm-core` plugs in.
//!
//! # Quick start
//!
//! ```
//! use ftjvm_vm::coordinator::NoopCoordinator;
//! use ftjvm_vm::env::{SimEnv, World};
//! use ftjvm_vm::native::NativeRegistry;
//! use ftjvm_vm::program::ProgramBuilder;
//! use ftjvm_vm::exec::{Vm, VmConfig};
//! use ftjvm_netsim::SimTime;
//! use std::sync::Arc;
//!
//! // A program that prints 6*7.
//! let mut b = ProgramBuilder::new();
//! let print_int = b.import_native("sys.print_int", 1, false);
//! let mut m = b.method("main", 1);
//! m.push_i(6).push_i(7).mul().invoke_native(print_int, 1).ret_void();
//! let entry = m.build(&mut b);
//! let program = Arc::new(b.build(entry)?);
//!
//! let world = World::shared();
//! let env = SimEnv::new("solo", world.clone(), SimTime::ZERO, 42);
//! let mut vm = Vm::new(program, NativeRegistry::with_builtins(), env, VmConfig::default())?;
//! let report = vm.run(&mut NoopCoordinator::new())?;
//! assert_eq!(world.borrow().console_texts(), vec!["42".to_string()]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bytecode;
pub mod class;
pub mod coordinator;
mod decoded;
pub mod disasm;
pub mod env;
pub mod error;
pub mod exec;
pub mod heap;
mod interp;
pub mod monitor;
pub mod native;
pub mod profile;
pub mod program;
pub mod race;
pub mod snapshot;
pub mod thread;
pub mod value;
pub mod vtid;

pub use bytecode::{ClassId, Cmp, Insn, MethodId, NativeId, StrId, VSlot};
pub use class::{Class, Handler, Method, NativeImport, Program};
pub use coordinator::{
    Coordinator, MonitorDecision, NativeDirective, NoopCoordinator, QuietBudget, StopReason,
    SwitchReason, ThreadObs, ThreadSnap,
};
pub use env::{SharedWorld, SimEnv, World};
pub use error::VmError;
pub use exec::{DispatchEngine, ExecCounters, RunOutcome, RunReport, SliceOutcome, Vm, VmConfig};
pub use native::{NativeAbort, NativeDecl, NativeKind, NativeOutcome, NativeRegistry};
pub use profile::OpProfiler;
pub use program::{BuildError, ProgramBuilder};
pub use race::{RaceDetector, RaceReport};
pub use snapshot::{SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
pub use thread::{AdoptedOutcome, ThreadIdx, ThreadState};
pub use value::{ObjRef, Value};
pub use vtid::VtPath;
