//! The virtual machine executor: green-thread scheduler, monitor protocol,
//! system threads, and the top-level run loop.
//!
//! The VM multiplexes all threads onto the calling OS thread, exactly like
//! the green-threads configuration the paper evaluates. Scheduling
//! non-determinism is *injected*: quantum lengths carry jitter drawn from a
//! per-replica seeded RNG, so two replicas with different seeds interleave
//! threads differently — which is precisely the non-determinism the
//! replication layer must mask.

use crate::bytecode::MethodId;
use crate::class::Program;
use crate::coordinator::{
    Coordinator, MonitorDecision, StopReason, SwitchReason, ThreadObs, ThreadSnap,
};
use crate::decoded::DecodedProgram;
use crate::env::SimEnv;
use crate::error::VmError;
use crate::heap::Heap;
use crate::interp;
use crate::monitor::{EnterResult, MonitorTable};
use crate::native::NativeRegistry;
use crate::thread::{ThreadIdx, ThreadKind, ThreadState, VmThread};
use crate::value::{ObjRef, Value};
use crate::vtid::VtPath;
use ftjvm_netsim::{Category, CostModel, SimTime, TimeAccount};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// How the interpreter fetches and dispatches instructions.
///
/// All engines execute through the same segment executor and are
/// byte-identical in every observable respect (counters, schedules,
/// outputs, logs); they differ only in host-time cost. `Match` exists as
/// the measured baseline for the decoded-dispatch speedup, `Decoded` as
/// the measured baseline for the fusion/quickening/inline-cache tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DispatchEngine {
    /// Execute the fused stream: the pre-decoded form with hot
    /// digrams/trigrams fused into superinstructions, operands quickened
    /// to direct indices, and monomorphic inline caches on virtual call
    /// sites. The fast default.
    #[default]
    Fused,
    /// Execute the plain pre-decoded flat stream built once at VM start
    /// (resolved operands, pre-classified ops) with no fusion tier.
    Decoded,
    /// Re-decode each `Insn` from the original program on every fetch —
    /// the per-unit `match`-dispatch cost the decoded engine amortizes.
    Match,
}

/// Tuning knobs for one VM instance.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Seed for scheduling jitter — the replica's interleaving identity.
    pub sched_seed: u64,
    /// Base quantum, in execution units.
    pub quantum: u32,
    /// Uniform extra jitter added to each quantum, `[0, jitter)`.
    pub quantum_jitter: u32,
    /// Hard heap capacity in objects (exhaustion is a fatal R0 error).
    pub heap_capacity: usize,
    /// Allocations between asynchronous GC requests.
    pub gc_threshold: usize,
    /// Run the asynchronous GC system thread.
    pub enable_gc_thread: bool,
    /// Run the finalizer system thread.
    pub enable_finalizer: bool,
    /// Collect soft references under pressure (off = the paper's
    /// treat-as-strong shortcut).
    pub collect_soft_refs: bool,
    /// Run the Eraser-style lockset race detector (verifies restriction
    /// R4A before a program is trusted to replicated lock
    /// synchronization); findings land in [`RunReport::races`].
    pub race_detect: bool,
    /// Execution-unit budget (bytecode + native phases) before the run is
    /// aborted as runaway.
    pub max_units: u64,
    /// The calibrated cost model.
    pub cost: CostModel,
    /// Integer argument passed to `main` (by convention a scale factor).
    pub entry_arg: i64,
    /// Instruction fetch/dispatch strategy.
    pub engine: DispatchEngine,
    /// Upper bound on units per straight-line segment (0 = no extra cap;
    /// segments are still bounded by the quantum and the slice budget).
    /// `block_cap = 1` reproduces the per-unit consult cadence of the
    /// pre-segment interpreter and serves as the accounting baseline.
    pub block_cap: u32,
    /// Record executed-op single/digram/trigram frequencies into
    /// [`VmCore::profile`] (the fusion-table measurement mode of the
    /// interp bench bin; slows execution, never used replicated).
    pub profile_ops: bool,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            sched_seed: 0x5EED,
            quantum: 400,
            quantum_jitter: 200,
            heap_capacity: 4_000_000,
            gc_threshold: 400_000,
            enable_gc_thread: true,
            enable_finalizer: true,
            collect_soft_refs: false,
            race_detect: false,
            max_units: 500_000_000,
            cost: CostModel::default(),
            entry_arg: 1,
            engine: DispatchEngine::default(),
            block_cap: 0,
            profile_ops: false,
        }
    }
}

/// Event counters for one run (the raw material of the paper's Table 2).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecCounters {
    /// Bytecode instructions executed by application threads.
    pub instructions: u64,
    /// Control-flow changes executed by application threads.
    pub branches: u64,
    /// Non-recursive monitor acquisitions by application threads.
    pub monitor_acquires: u64,
    /// All monitor acquire/release events by application threads.
    pub monitor_ops: u64,
    /// Native-method invocations by application threads.
    pub native_calls: u64,
    /// Output-commit events.
    pub outputs: u64,
    /// Heap allocations.
    pub allocations: u64,
    /// Garbage collections.
    pub gc_runs: u64,
    /// Application-to-application context switches.
    pub context_switches: u64,
    /// Distinct objects whose monitor was acquired at least once
    /// (Table 2's "Objects Locked").
    pub objects_locked: u64,
    /// Application threads spawned (excluding main).
    pub spawns: u64,
}

/// Why the run loop returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunOutcome {
    /// All application threads terminated.
    Completed,
    /// The coordinator stopped the run (fault injection fired).
    Stopped,
}

/// Everything observable about one finished (or stopped) run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// How the run ended.
    pub outcome: RunOutcome,
    /// Event counters.
    pub counters: ExecCounters,
    /// Simulated-time account (per overhead category).
    pub acct: TimeAccount,
    /// Threads that died with an uncaught exception: (stable id if
    /// application thread, exception code).
    pub uncaught: Vec<(Option<VtPath>, i64)>,
    /// Data races found by the lockset detector (empty unless
    /// [`VmConfig::race_detect`] was set).
    pub races: Vec<crate::race::RaceReport>,
}

#[derive(Debug, Default)]
pub(crate) struct InternalLock {
    pub(crate) holder: Option<ThreadIdx>,
    pub(crate) waiters: Vec<ThreadIdx>,
}

/// The mutable execution state of one VM replica.
///
/// Exposed (with care) so the replication crate can snapshot counters and
/// drive recovery; ordinary users interact through [`Vm`].
#[derive(Debug)]
pub struct VmCore {
    /// The immutable program.
    pub program: Arc<Program>,
    /// Configuration.
    pub cfg: VmConfig,
    /// The heap.
    pub heap: Heap,
    /// Monitor table.
    pub monitors: MonitorTable,
    /// Static fields, per class.
    pub statics: Vec<Vec<Value>>,
    /// Per-class lock objects for synchronized statics (allocated in class
    /// order before any thread runs, hence identical across replicas).
    pub class_objects: Vec<ObjRef>,
    /// All threads ever created.
    pub threads: Vec<VmThread>,
    /// Runnable threads awaiting dispatch.
    pub run_queue: VecDeque<ThreadIdx>,
    /// The thread currently on the (virtual) CPU.
    pub current: Option<ThreadIdx>,
    /// This replica's environment.
    pub env: SimEnv,
    /// The simulated-time account.
    pub acct: TimeAccount,
    /// Event counters.
    pub counters: ExecCounters,
    /// Uncaught-exception exits.
    pub uncaught: Vec<(Option<VtPath>, i64)>,
    /// Pending finalizations.
    pub finalizer_queue: VecDeque<ObjRef>,
    /// The lockset race detector, when enabled.
    pub race: Option<crate::race::RaceDetector>,
    /// Executed-op frequency counts, when [`VmConfig::profile_ops`] is set.
    pub profile: Option<crate::profile::OpProfiler>,
    /// Monomorphic inline caches, indexed by the decode-time site ids the
    /// fused stream carries in `InvokeVirtual.imm`. Pure host-side
    /// memoization: transient, never snapshotted — a restored VM re-warms
    /// from empty (see `snapshot.rs`).
    pub(crate) ics: Vec<crate::decoded::IcEntry>,
    pub(crate) linked: Vec<u32>,
    pub(crate) quantum_left: u32,
    pub(crate) sched_rng: StdRng,
    pub(crate) heap_lock: InternalLockId,
    pub(crate) internal_locks: Vec<InternalLock>,
    pub(crate) gc_requested: bool,
    pub(crate) gc_phase: u8,
    pub(crate) gc_thread: Option<ThreadIdx>,
    pub(crate) finalizer_thread: Option<ThreadIdx>,
    pub(crate) pending_switch: Option<(ThreadSnap, SwitchReason)>,
    pub(crate) yield_requested: bool,
    pub(crate) units: u64,
    /// The pre-decoded instruction streams (rebuilt by [`Vm::new`], so
    /// snapshot restore regenerates it for free — it never hits the wire).
    pub(crate) decoded: Arc<DecodedProgram>,
}

/// Identifies a VM-internal (non-Java) lock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternalLockId(pub(crate) usize);

/// Result of a coordinated monitor acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOutcome {
    /// The monitor is now held (the thread proceeds).
    Acquired,
    /// The monitor is held by someone else; the thread is blocked.
    Blocked,
    /// The coordinator deferred the acquisition (backup replay).
    Deferred,
}

/// Builds a [`ThreadObs`] from disjoint field borrows (callers pass
/// `&core.threads` so `&mut core.acct` stays available).
pub(crate) fn obs_of(threads: &[VmThread], t: ThreadIdx) -> ThreadObs<'_> {
    let th = &threads[t.0 as usize];
    let (method, pc) = match th.frames.last() {
        Some(f) => (Some(f.method), f.pc),
        None => (None, 0),
    };
    ThreadObs {
        t,
        vt: th.vt.as_ref(),
        br_cnt: th.br_cnt,
        mon_cnt: th.mon_cnt,
        t_asn: th.t_asn,
        method,
        pc,
        in_native: th.native.is_some(),
    }
}

fn snap_of(threads: &[VmThread], monitors: &MonitorTable, t: ThreadIdx) -> ThreadSnap {
    let th = &threads[t.0 as usize];
    let (method, pc) = match th.frames.last() {
        Some(f) => (Some(f.method), f.pc),
        None => (None, 0),
    };
    let blocked_lasn = match th.state {
        ThreadState::BlockedMonitor { obj }
        | ThreadState::WaitingMonitor { obj }
        | ThreadState::DeferredMonitor { obj } => {
            monitors.monitor(obj).map(|m| m.l_asn).unwrap_or(0)
        }
        _ => 0,
    };
    ThreadSnap {
        t,
        vt: th.vt.clone(),
        br_cnt: th.br_cnt,
        mon_cnt: th.mon_cnt,
        t_asn: th.t_asn,
        method,
        pc,
        in_native: th.native.is_some(),
        blocked_lasn,
    }
}

impl VmCore {
    pub(crate) fn thread(&self, t: ThreadIdx) -> &VmThread {
        &self.threads[t.0 as usize]
    }

    pub(crate) fn thread_mut(&mut self, t: ThreadIdx) -> &mut VmThread {
        &mut self.threads[t.0 as usize]
    }

    /// True once every application thread has terminated.
    pub fn app_done(&self) -> bool {
        self.threads.iter().filter(|t| t.is_app()).all(|t| t.terminated())
    }

    /// Charges a base-category cost.
    pub(crate) fn charge_base(&mut self, d: SimTime) {
        self.acct.charge(Category::Base, d);
    }

    // ----- internal (non-Java) locks -----

    pub(crate) fn internal_try_lock(&mut self, id: InternalLockId, t: ThreadIdx) -> bool {
        let lock = &mut self.internal_locks[id.0];
        match lock.holder {
            None => {
                lock.holder = Some(t);
                true
            }
            Some(h) if h == t => true,
            Some(_) => {
                lock.waiters.push(t);
                self.thread_mut(t).state = ThreadState::BlockedInternal;
                false
            }
        }
    }

    pub(crate) fn internal_unlock(&mut self, id: InternalLockId) {
        let waiters: Vec<ThreadIdx> = {
            let lock = &mut self.internal_locks[id.0];
            lock.holder = None;
            lock.waiters.drain(..).collect()
        };
        for w in waiters {
            self.make_runnable(w);
        }
    }

    /// Moves a thread to the runnable state and the back of the run queue.
    pub(crate) fn make_runnable(&mut self, t: ThreadIdx) {
        let th = self.thread_mut(t);
        if th.state != ThreadState::Terminated {
            th.state = ThreadState::Runnable;
            if self.current != Some(t) && !self.run_queue.contains(&t) {
                self.run_queue.push_back(t);
            }
        }
    }

    /// Wakes every thread blocked in `obj`'s (conceptual) entry queue.
    pub(crate) fn wake_blocked_on(&mut self, obj: ObjRef) {
        let blocked: Vec<ThreadIdx> = self
            .threads
            .iter()
            .filter(|th| th.state == ThreadState::BlockedMonitor { obj })
            .map(|th| th.idx)
            .collect();
        for t in blocked {
            self.make_runnable(t);
        }
    }

    /// Re-polls every lock-replay-deferred thread against the coordinator.
    pub(crate) fn poll_deferred(&mut self, coord: &mut dyn Coordinator) {
        let deferred: Vec<(ThreadIdx, ObjRef)> = self
            .threads
            .iter()
            .filter_map(|th| match th.state {
                ThreadState::DeferredMonitor { obj } => Some((th.idx, obj)),
                _ => None,
            })
            .collect();
        for (t, obj) in deferred {
            let (l_id, l_asn) = {
                let m = self.monitors.monitor_mut(obj);
                (m.l_id, m.l_asn)
            };
            let grant = {
                let obs = obs_of(&self.threads, t);
                matches!(coord.pre_monitor_acquire(&obs, obj, l_id, l_asn), MonitorDecision::Grant)
            };
            if grant {
                self.make_runnable(t);
            }
        }
    }

    /// Wakes every thread held at a native invocation by a streaming
    /// replay ([`ThreadState::DeferredNative`]). Called by the replica
    /// driver after feeding new log frames; a woken thread simply retries
    /// the invocation and re-asks [`Coordinator::native_ready`].
    pub fn wake_deferred_natives(&mut self) {
        let deferred: Vec<ThreadIdx> = self
            .threads
            .iter()
            .filter(|th| th.state == ThreadState::DeferredNative)
            .map(|th| th.idx)
            .collect();
        for t in deferred {
            self.make_runnable(t);
        }
    }

    /// The coordinated monitor-acquisition protocol for thread `t` on
    /// `obj`. `restore_recursion` is used by `wait` re-acquisition to
    /// restore the saved depth.
    pub(crate) fn acquire_monitor(
        &mut self,
        coord: &mut dyn Coordinator,
        t: ThreadIdx,
        obj: ObjRef,
        restore_recursion: Option<u32>,
    ) -> AcquireOutcome {
        let is_app = self.thread(t).is_app();
        let monitor_op_cost = self.cfg.cost.monitor_op;
        // Recursive fast path: no coordination needed — ownership already
        // serializes.
        if self.monitors.monitor_mut(obj).owned_by(t) {
            self.monitors.monitor_mut(obj).recursion += 1;
            self.thread_mut(t).mon_cnt += 1;
            if is_app {
                self.counters.monitor_ops += 1;
                if self.race.is_some() {
                    self.thread_mut(t).held_for_race.push(obj);
                }
            }
            self.charge_base(monitor_op_cost);
            return AcquireOutcome::Acquired;
        }
        // Coordinator gate (application threads only).
        if is_app {
            let (l_id, l_asn) = {
                let m = self.monitors.monitor_mut(obj);
                (m.l_id, m.l_asn)
            };
            let decision = {
                let obs = obs_of(&self.threads, t);
                coord.pre_monitor_acquire(&obs, obj, l_id, l_asn)
            };
            if decision == MonitorDecision::Defer {
                self.thread_mut(t).state = ThreadState::DeferredMonitor { obj };
                return AcquireOutcome::Deferred;
            }
        }
        match self.monitors.monitor_mut(obj).try_enter(t) {
            EnterResult::Contended { .. } => {
                self.thread_mut(t).state = ThreadState::BlockedMonitor { obj };
                AcquireOutcome::Blocked
            }
            EnterResult::Acquired { recursive } => {
                debug_assert!(!recursive, "recursive path handled above");
                if let Some(depth) = restore_recursion {
                    self.monitors.monitor_mut(obj).recursion = depth;
                }
                self.thread_mut(t).mon_cnt += 1;
                self.charge_base(monitor_op_cost);
                if is_app && self.race.is_some() {
                    let copies = restore_recursion.unwrap_or(1) as usize;
                    for _ in 0..copies {
                        self.thread_mut(t).held_for_race.push(obj);
                    }
                }
                if is_app {
                    self.thread_mut(t).t_asn += 1;
                    self.counters.monitor_ops += 1;
                    self.counters.monitor_acquires += 1;
                    let (l_id, l_asn) = {
                        let m = self.monitors.monitor_mut(obj);
                        m.l_asn += 1;
                        (m.l_id, m.l_asn)
                    };
                    if l_asn == 1 {
                        self.counters.objects_locked += 1;
                    }
                    let assigned = {
                        let (threads, acct) = (&self.threads, &mut self.acct);
                        let obs = obs_of(threads, t);
                        coord.post_monitor_acquire(&obs, obj, l_id, l_asn, acct)
                    };
                    if let Some(id) = assigned {
                        self.monitors.monitor_mut(obj).l_id = Some(id);
                    }
                    // A turn was consumed: deferred threads may be next.
                    self.poll_deferred(coord);
                }
                AcquireOutcome::Acquired
            }
        }
    }

    /// Releases one recursion level of `obj` held by `t`.
    ///
    /// # Errors
    /// [`crate::monitor::NotOwner`] if `t` is not the owner (caller raises
    /// `IllegalMonitorStateException`).
    pub(crate) fn release_monitor(
        &mut self,
        coord: &mut dyn Coordinator,
        t: ThreadIdx,
        obj: ObjRef,
    ) -> Result<(), crate::monitor::NotOwner> {
        let freed = self.monitors.monitor_mut(obj).exit(t)?;
        self.thread_mut(t).mon_cnt += 1;
        if self.thread(t).is_app() {
            self.counters.monitor_ops += 1;
            if self.race.is_some() {
                let held = &mut self.thread_mut(t).held_for_race;
                if let Some(pos) = held.iter().rposition(|o| *o == obj) {
                    held.remove(pos);
                }
            }
        }
        let cost = self.cfg.cost.monitor_op;
        self.charge_base(cost);
        if freed {
            self.wake_blocked_on(obj);
            self.poll_deferred(coord);
        }
        Ok(())
    }

    /// Spawns a new application thread running `method(arg)`.
    pub(crate) fn spawn_app_thread(
        &mut self,
        coord: &mut dyn Coordinator,
        parent: ThreadIdx,
        method: MethodId,
        arg: Value,
    ) -> Result<ThreadIdx, VmError> {
        let m = &self.program.methods[method.0 as usize];
        if !m.is_static || m.n_args != 1 {
            return Err(VmError::Internal(format!(
                "spawn target `{}` must be a one-argument static method",
                m.name
            )));
        }
        let n_locals = m.n_locals;
        let vt = {
            let p = self.thread_mut(parent);
            let Some(parent_vt) = p.vt.as_ref() else {
                return Err(VmError::Internal("only application threads spawn".into()));
            };
            let vt = parent_vt.child(p.children);
            p.children += 1;
            vt
        };
        {
            let obs = obs_of(&self.threads, parent);
            coord.on_spawn(&obs, &vt);
        }
        let idx = ThreadIdx(self.threads.len() as u32);
        let th = VmThread::new(idx, ThreadKind::App, Some(vt), method, n_locals, vec![arg]);
        self.threads.push(th);
        self.run_queue.push_back(idx);
        self.counters.spawns += 1;
        Ok(idx)
    }

    /// Terminates the current thread (normal return or uncaught exception).
    pub(crate) fn finish_thread(
        &mut self,
        coord: &mut dyn Coordinator,
        t: ThreadIdx,
        uncaught: Option<i64>,
    ) {
        if let Some(code) = uncaught {
            let vt = self.thread(t).vt.clone();
            self.uncaught.push((vt, code));
        }
        if self.thread(t).is_app() {
            let (threads, acct) = (&self.threads, &mut self.acct);
            let obs = obs_of(threads, t);
            coord.on_thread_exit(&obs, acct);
        }
        self.thread_mut(t).state = ThreadState::Terminated;
        self.thread_mut(t).frames.clear();
        self.thread_mut(t).native = None;
    }

    /// Runs a full garbage collection (caller holds the heap lock or is the
    /// synchronous-GC intrinsic).
    pub(crate) fn run_gc(&mut self) {
        let mut roots: Vec<ObjRef> = Vec::new();
        for th in &self.threads {
            roots.extend(th.roots());
        }
        for class_statics in &self.statics {
            for v in class_statics {
                if let Value::Ref(r) = v {
                    roots.push(*r);
                }
            }
        }
        roots.extend(self.class_objects.iter().copied());
        roots.extend(self.finalizer_queue.iter().copied());
        roots.extend(self.monitors.active_objects());
        let result = self.heap.collect(roots, &self.program.classes, self.cfg.collect_soft_refs);
        let visited = (result.live + result.freed) as u64;
        let per_obj = self.cfg.cost.gc_per_object;
        self.charge_base(SimTime::from_nanos(per_obj.as_nanos() * visited));
        for obj in result.finalizable {
            self.finalizer_queue.push_back(obj);
        }
        let heap = &self.heap;
        self.monitors.retain_live(|r| heap.get(r).is_some());
        if let Some(d) = &mut self.race {
            d.retain_live(|r| heap.get(r).is_some());
        }
        self.counters.gc_runs += 1;
        self.gc_requested = false;
    }

    /// Requests asynchronous collection if allocation pressure demands it.
    pub(crate) fn maybe_request_gc(&mut self) {
        if self.heap.pressure() {
            self.gc_requested = true;
        }
    }

    fn fresh_quantum(&mut self) -> u32 {
        let jitter = if self.cfg.quantum_jitter == 0 {
            0
        } else {
            self.sched_rng.gen_range(0..self.cfg.quantum_jitter)
        };
        (self.cfg.quantum + jitter).max(1)
    }

    /// Yields the current thread with `reason`: notifies the coordinator,
    /// records the pending switch, and re-queues runnable yields.
    pub(crate) fn note_yield(&mut self, coord: &mut dyn Coordinator, reason: SwitchReason) {
        let Some(t) = self.current.take() else { return };
        let snap = snap_of(&self.threads, &self.monitors, t);
        coord.on_yield(&snap, reason, &mut self.acct);
        self.pending_switch = Some((snap, reason));
        if self.thread(t).state == ThreadState::Runnable {
            self.run_queue.push_back(t);
        }
    }

    fn wake_sleepers(&mut self) {
        let now = self.acct.now();
        let due: Vec<ThreadIdx> = self
            .threads
            .iter()
            .filter_map(|th| match th.state {
                ThreadState::Sleeping { until } if until <= now => Some(th.idx),
                _ => None,
            })
            .collect();
        for t in due {
            self.make_runnable(t);
        }
    }

    fn earliest_wake(&self) -> Option<SimTime> {
        self.threads
            .iter()
            .filter_map(|th| match th.state {
                ThreadState::Sleeping { until } => Some(until),
                _ => None,
            })
            .min()
    }

    fn unpark_system_threads(&mut self) {
        if self.gc_requested || self.heap.pressure() {
            if let Some(g) = self.gc_thread {
                if self.thread(g).state == ThreadState::Parked {
                    self.make_runnable(g);
                }
            }
        }
        if !self.finalizer_queue.is_empty() {
            if let Some(f) = self.finalizer_thread {
                if self.thread(f).state == ThreadState::Parked {
                    self.make_runnable(f);
                }
            }
        }
    }

    /// Dispatches the next thread.
    ///
    /// # Errors
    /// Returns [`VmError::Deadlock`] when no thread can ever run again.
    pub(crate) fn schedule(&mut self, coord: &mut dyn Coordinator) -> Result<Schedule, VmError> {
        let mut stall_rounds = 0u32;
        loop {
            if self.current.is_some() {
                return Ok(Schedule::Dispatched);
            }
            // A pending stop (crash injection, detected divergence) must
            // reach the run loop even if no thread is dispatchable.
            if coord.stop().is_some() {
                return Ok(Schedule::Interrupted);
            }
            self.wake_sleepers();
            self.unpark_system_threads();
            // Drop stale queue entries (terminated/blocked since enqueue).
            while let Some(&front) = self.run_queue.front() {
                if self.thread(front).state == ThreadState::Runnable {
                    break;
                }
                self.run_queue.pop_front();
            }
            if !self.run_queue.is_empty() {
                let candidates: Vec<ThreadSnap> = self
                    .run_queue
                    .iter()
                    .filter(|t| self.thread(**t).state == ThreadState::Runnable)
                    .map(|t| snap_of(&self.threads, &self.monitors, *t))
                    .collect();
                if candidates.is_empty() {
                    self.run_queue.clear();
                    continue;
                }
                let choice = match coord.pick_next(&candidates) {
                    crate::coordinator::Pick::Default => 0,
                    crate::coordinator::Pick::Choose(i) => i.min(candidates.len() - 1),
                    crate::coordinator::Pick::Idle => {
                        // The replay cannot run any candidate; wait for a
                        // sleeper or let the coordinator resolve the stall.
                        if self.idle_round(coord, &mut stall_rounds, false)? {
                            return Ok(Schedule::Paused);
                        }
                        continue;
                    }
                };
                let chosen = candidates[choice].t;
                // Remove the chosen thread from the queue (it may not be at
                // the front if the coordinator picked).
                if let Some(pos) = self.run_queue.iter().position(|x| *x == chosen) {
                    self.run_queue.remove(pos);
                }
                let to_snap = candidates[choice].clone();
                let from = self.pending_switch.take();
                let from_is_other_app =
                    from.as_ref().map(|(s, _)| s.vt.is_some() && s.t != chosen).unwrap_or(false);
                if from_is_other_app && to_snap.vt.is_some() {
                    self.counters.context_switches += 1;
                }
                {
                    let (reason, from_snap) = match &from {
                        Some((s, r)) => (*r, Some(s)),
                        None => (SwitchReason::Quantum, None),
                    };
                    coord.on_switch(from_snap, reason, &to_snap, &mut self.acct);
                }
                self.current = Some(chosen);
                self.quantum_left = self.fresh_quantum();
                return Ok(Schedule::Dispatched);
            }
            // Nothing runnable: maybe everyone is done.
            if self.app_done() {
                return Ok(Schedule::ProgramDone);
            }
            if self.idle_round(coord, &mut stall_rounds, true)? {
                return Ok(Schedule::Paused);
            }
        }
    }

    /// One round of "nothing can be dispatched": advance to the next
    /// sleeper wake-up, suspend a starved streaming replay (`Ok(true)`),
    /// give the coordinator a chance to resolve the stall, or declare
    /// deadlock.
    fn idle_round(
        &mut self,
        coord: &mut dyn Coordinator,
        stall_rounds: &mut u32,
        queue_empty: bool,
    ) -> Result<bool, VmError> {
        if let Some(wake) = self.earliest_wake() {
            self.acct.wait_until(Category::Base, wake);
            return Ok(false);
        }
        if coord.starved() {
            return Ok(true);
        }
        if *stall_rounds < 2 && coord.on_stall(&mut self.acct) {
            *stall_rounds += 1;
            self.poll_deferred(coord);
            return Ok(false);
        }
        if coord.stop().is_some() {
            // Let the run loop surface the coordinator's stop reason.
            return Ok(false);
        }
        let detail: Vec<String> = self
            .threads
            .iter()
            .filter(|t| !t.terminated())
            .map(|t| format!("{}:{:?}{}", t.idx, t.state, if queue_empty { "" } else { " (held)" }))
            .collect();
        Err(VmError::Deadlock { detail: detail.join(", ") })
    }
}

/// Outcome of a scheduling round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Schedule {
    /// A thread was dispatched.
    Dispatched,
    /// All application threads have terminated.
    ProgramDone,
    /// The coordinator requested a stop; the run loop should poll it.
    Interrupted,
    /// The coordinator is starved for external input (streaming replay).
    Paused,
}

/// Why [`Vm::run_slice`] returned.
#[derive(Debug, Clone)]
pub enum SliceOutcome {
    /// The slice's unit budget was exhausted; the program is still running.
    Budget,
    /// The coordinator is starved: it cannot make progress until the
    /// driver feeds it more input (see [`Coordinator::starved`]).
    Paused,
    /// The program ran to completion.
    Completed(RunReport),
    /// The coordinator stopped the run (fault injection fired).
    Stopped(RunReport),
}

/// A virtual machine instance: one replica.
#[derive(Debug)]
pub struct Vm {
    core: VmCore,
    natives: NativeRegistry,
}

impl Vm {
    /// Creates a VM for `program`, resolving its native imports against
    /// `natives`, with `env` as its environment.
    ///
    /// # Errors
    /// Returns [`VmError::UnlinkedNative`] / [`VmError::NativeSignature`]
    /// if an import cannot be resolved, and [`VmError::OutOfMemory`] if the
    /// heap cannot hold the per-class lock objects.
    pub fn new(
        program: Arc<Program>,
        natives: NativeRegistry,
        env: SimEnv,
        cfg: VmConfig,
    ) -> Result<Self, VmError> {
        // Link native imports.
        let mut linked = Vec::with_capacity(program.native_imports.len());
        for imp in &program.native_imports {
            let idx = natives
                .decls()
                .iter()
                .position(|d| d.name == imp.name)
                .ok_or_else(|| VmError::UnlinkedNative { name: imp.name.clone() })?;
            let decl = &natives.decls()[idx];
            if decl.argc != imp.argc || decl.returns != imp.returns {
                return Err(VmError::NativeSignature {
                    name: imp.name.clone(),
                    detail: format!(
                        "import ({}, returns={}) vs registry ({}, returns={})",
                        imp.argc, imp.returns, decl.argc, decl.returns
                    ),
                });
            }
            linked.push(idx as u32);
        }
        let mut heap = Heap::new(cfg.heap_capacity, cfg.gc_threshold);
        // Per-class lock objects, allocated in class order (deterministic
        // across replicas because the heap is empty).
        let mut class_objects = Vec::with_capacity(program.classes.len());
        for _ in &program.classes {
            class_objects.push(
                heap.alloc_obj(crate::class::builtin::OBJECT, 0)
                    .map_err(|_| VmError::OutOfMemory)?,
            );
        }
        let statics =
            program.classes.iter().map(|c| vec![Value::Null; c.n_statics as usize]).collect();
        let entry = program.method(program.entry);
        let main = VmThread::new(
            ThreadIdx(0),
            ThreadKind::App,
            Some(VtPath::root()),
            entry.id,
            entry.n_locals,
            vec![Value::Int(cfg.entry_arg)],
        );
        let mut threads = vec![main];
        let mut run_queue = VecDeque::new();
        run_queue.push_back(ThreadIdx(0));
        let mut gc_thread = None;
        let mut finalizer_thread = None;
        if cfg.enable_gc_thread {
            let idx = ThreadIdx(threads.len() as u32);
            threads.push(VmThread::new_system(idx, ThreadKind::GcWorker));
            gc_thread = Some(idx);
        }
        if cfg.enable_finalizer {
            let idx = ThreadIdx(threads.len() as u32);
            threads.push(VmThread::new_system(idx, ThreadKind::Finalizer));
            finalizer_thread = Some(idx);
        }
        let sched_rng = StdRng::seed_from_u64(cfg.sched_seed);
        let decoded = Arc::new(DecodedProgram::build(&program));
        Ok(Vm {
            core: VmCore {
                program,
                heap,
                monitors: MonitorTable::new(),
                statics,
                class_objects,
                threads,
                run_queue,
                current: None,
                env,
                acct: TimeAccount::new(),
                counters: ExecCounters::default(),
                uncaught: Vec::new(),
                finalizer_queue: VecDeque::new(),
                race: if cfg.race_detect { Some(crate::race::RaceDetector::new()) } else { None },
                profile: if cfg.profile_ops {
                    Some(crate::profile::OpProfiler::new())
                } else {
                    None
                },
                ics: vec![crate::decoded::IcEntry::default(); decoded.n_ic_sites as usize],
                linked,
                quantum_left: 0,
                sched_rng,
                heap_lock: InternalLockId(0),
                internal_locks: vec![InternalLock::default()],
                gc_requested: false,
                gc_phase: 0,
                gc_thread,
                finalizer_thread,
                pending_switch: None,
                yield_requested: false,
                units: 0,
                decoded,
                cfg,
            },
            natives: natives_into(natives),
        })
    }

    /// The execution core (counters, environment, heap).
    pub fn core(&self) -> &VmCore {
        &self.core
    }

    /// Mutable access to the core (tests and the replication harness).
    pub fn core_mut(&mut self) -> &mut VmCore {
        &mut self.core
    }

    /// Runs the program to completion (or until the coordinator stops it).
    ///
    /// # Errors
    /// Propagates fatal [`VmError`]s (deadlock, OOM, budget, divergence).
    pub fn run(&mut self, coord: &mut dyn Coordinator) -> Result<RunReport, VmError> {
        loop {
            match self.run_slice(coord, u64::MAX)? {
                SliceOutcome::Budget => continue,
                SliceOutcome::Paused => {
                    return Err(VmError::Internal(
                        "coordinator starved a non-sliced run (no driver to feed it)".into(),
                    ));
                }
                SliceOutcome::Completed(r) | SliceOutcome::Stopped(r) => return Ok(r),
            }
        }
    }

    /// Runs at most `max_units` execution units, returning between units.
    ///
    /// This is the co-simulation entry point: a replica driver alternates
    /// bounded slices of the primary and the backup on one simulated
    /// timeline. Slicing is behavior-neutral — a run advanced by repeated
    /// slices is bit-identical to one uninterrupted [`Vm::run`].
    ///
    /// # Errors
    /// Propagates fatal [`VmError`]s (deadlock, OOM, budget, divergence).
    pub fn run_slice(
        &mut self,
        coord: &mut dyn Coordinator,
        max_units: u64,
    ) -> Result<SliceOutcome, VmError> {
        let end = self.core.units.saturating_add(max_units);
        loop {
            if let Some(stop) = coord.stop() {
                return match stop {
                    StopReason::Crash => {
                        Ok(SliceOutcome::Stopped(self.report(RunOutcome::Stopped)))
                    }
                    StopReason::Error(e) => Err(e),
                };
            }
            if self.core.units >= end {
                return Ok(SliceOutcome::Budget);
            }
            match self.core.schedule(coord)? {
                Schedule::Dispatched => self.step_block(coord, end)?,
                Schedule::ProgramDone => {
                    coord.on_exit(&mut self.core.acct);
                    return Ok(SliceOutcome::Completed(self.report(RunOutcome::Completed)));
                }
                Schedule::Interrupted => continue,
                Schedule::Paused => return Ok(SliceOutcome::Paused),
            }
        }
    }

    /// Re-polls replay-suspended threads after the driver fed the
    /// coordinator new input: native-deferred threads are woken to retry
    /// their invocation, and deferred monitor acquisitions are re-asked.
    pub fn poll_suspended(&mut self, coord: &mut dyn Coordinator) {
        self.core.wake_deferred_natives();
        self.core.poll_deferred(coord);
    }

    fn report(&self, outcome: RunOutcome) -> RunReport {
        RunReport {
            outcome,
            counters: self.core.counters,
            acct: self.core.acct.clone(),
            uncaught: self.core.uncaught.clone(),
            races: self.core.race.as_ref().map(|d| d.reports.clone()).unwrap_or_default(),
        }
    }

    /// Executes one *block* of the current thread: a straight-line segment
    /// of quiet instructions under a single coordinator consult, or a
    /// single coordinated unit (monitor op, native phase, throw,
    /// system-thread step) through the legacy path.
    fn step_block(&mut self, coord: &mut dyn Coordinator, slice_end: u64) -> Result<(), VmError> {
        let t = self
            .core
            .current
            .ok_or_else(|| VmError::Internal("step_block without a dispatched thread".into()))?;
        // System threads (GC, finalizer) are not replicated: no consult, no
        // progress tracking — the legacy one-unit path, one unit at a time.
        if !self.core.thread(t).is_app() {
            self.core.units += 1;
            if self.core.units > self.core.cfg.max_units {
                return Err(VmError::InstructionBudget);
            }
            interp::exec_unit(&mut self.core, &self.natives, coord)?;
            return self.finish_step(coord, t, 1);
        }
        // Exactly one consult per block: the replay-forced preemption point
        // and the per-consult progress-tracking charge site.
        let preempt = {
            let (threads, acct) = (&self.core.threads, &mut self.core.acct);
            let obs = obs_of(threads, t);
            coord.check_preempt(&obs, acct)
        };
        if preempt {
            // A consumed dispatch: charge one unit (as the per-unit loop
            // did) so replay spinning — parked threads, streamed logs —
            // still drains the slice budget and the driver regains control.
            self.core.units += 1;
            if self.core.units > self.core.cfg.max_units {
                return Err(VmError::InstructionBudget);
            }
            self.core.note_yield(coord, SwitchReason::ReplayPoint);
            return Ok(());
        }
        // Mid-native threads always step one phase through the legacy path.
        if self.core.thread(t).native.is_some() {
            return self.run_legacy_unit(coord, t);
        }
        // The VM's own segment cap: slice budget, runaway budget, quantum,
        // configured block size.
        let mut max = slice_end
            .saturating_sub(self.core.units)
            .min(self.core.cfg.max_units.saturating_sub(self.core.units).max(1))
            .min(self.core.quantum_left.max(1) as u64);
        if self.core.cfg.block_cap > 0 {
            max = max.min(self.core.cfg.block_cap as u64);
        }
        let max = max.max(1);
        let budget = {
            let obs = obs_of(&self.core.threads, t);
            coord.quiet_budget(&obs, max)
        };
        let units = budget.units.min(max);
        let n = interp::exec_segment(&mut self.core, coord, units, budget.stop_br)?;
        if n == 0 {
            // The instruction at pc coordinates (breaker, synchronized
            // call/return, heap-locked allocation): run it as one legacy
            // unit under the consult already performed above.
            return self.run_legacy_unit(coord, t);
        }
        self.core.units += n;
        if self.core.units > self.core.cfg.max_units {
            return Err(VmError::InstructionBudget);
        }
        coord.note_units(n, &mut self.core.acct);
        self.finish_step(coord, t, n)
    }

    /// One unit through [`interp::exec_unit`] for an application thread
    /// whose `check_preempt` consult already happened this block.
    fn run_legacy_unit(
        &mut self,
        coord: &mut dyn Coordinator,
        t: ThreadIdx,
    ) -> Result<(), VmError> {
        self.core.units += 1;
        if self.core.units > self.core.cfg.max_units {
            return Err(VmError::InstructionBudget);
        }
        interp::exec_unit(&mut self.core, &self.natives, coord)?;
        coord.note_units(1, &mut self.core.acct);
        self.finish_step(coord, t, 1)
    }

    /// The post-block scheduler tail: quantum accounting for `n` consumed
    /// units and the yield/switch decision. Identical to the pre-segment
    /// per-unit tail when `n == 1`.
    fn finish_step(
        &mut self,
        coord: &mut dyn Coordinator,
        t: ThreadIdx,
        n: u64,
    ) -> Result<(), VmError> {
        // The block may have blocked, terminated, or otherwise changed state.
        if self.core.current != Some(t) {
            return Ok(());
        }
        let reason = match self.core.thread(t).state {
            ThreadState::Runnable => {
                if self.core.yield_requested {
                    self.core.yield_requested = false;
                    Some(SwitchReason::Yield)
                } else if (self.core.quantum_left as u64) <= n {
                    let allow = {
                        let obs = obs_of(&self.core.threads, t);
                        coord.allow_quantum_preempt(&obs)
                    };
                    if allow {
                        Some(SwitchReason::Quantum)
                    } else {
                        self.core.quantum_left = self.core.fresh_quantum();
                        None
                    }
                } else {
                    self.core.quantum_left -= n as u32;
                    None
                }
            }
            ThreadState::Terminated => Some(SwitchReason::Exit),
            ThreadState::BlockedMonitor { .. } => Some(SwitchReason::BlockedMonitor),
            ThreadState::WaitingMonitor { .. } => Some(SwitchReason::Waiting),
            ThreadState::DeferredMonitor { .. } => Some(SwitchReason::Deferred),
            ThreadState::DeferredNative => Some(SwitchReason::DeferredNative),
            ThreadState::BlockedInternal => Some(SwitchReason::Internal),
            ThreadState::Sleeping { .. } => Some(SwitchReason::Sleep),
            ThreadState::Parked => {
                // System thread went idle; not a replicated event.
                self.core.current = None;
                self.core.pending_switch = None;
                None
            }
        };
        if let Some(reason) = reason {
            self.core.note_yield(coord, reason);
        }
        Ok(())
    }
}

// `NativeRegistry` is consumed by value; this indirection exists so future
// shared registries can be swapped in without changing `Vm::new`'s
// signature.
fn natives_into(n: NativeRegistry) -> NativeRegistry {
    n
}
