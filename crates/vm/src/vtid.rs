//! Virtual thread identifiers.
//!
//! Raw thread indices are replica-local: the order in which threads are
//! *created globally* depends on scheduling, so indices assigned from a
//! global counter would not match across replicas. The paper (§4.2) defines
//! a scheduling-independent id recursively: a thread is identified by its
//! parent's id plus the ordinal of its creation *among its siblings*,
//! because a parent spawns its children in the same relative order at every
//! replica. A [`VtPath`] is exactly that chain of sibling ordinals.

use std::fmt;

/// A virtual thread id: the chain of sibling ordinals from the root thread.
///
/// The initial application thread is `[0]`; its third spawned child is
/// `[0, 2]`; that child's first child is `[0, 2, 0]`.
///
/// ```
/// use ftjvm_vm::vtid::VtPath;
/// let root = VtPath::root();
/// let child = root.child(2);
/// let grandchild = child.child(0);
/// assert_eq!(grandchild.to_string(), "t0.2.0");
/// assert_eq!(grandchild.ordinals(), &[0, 2, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VtPath(Vec<u32>);

impl VtPath {
    /// The id of the initial application thread.
    pub fn root() -> Self {
        VtPath(vec![0])
    }

    /// The id of this thread's `ordinal`-th spawned child.
    pub fn child(&self, ordinal: u32) -> Self {
        let mut v = self.0.clone();
        v.push(ordinal);
        VtPath(v)
    }

    /// The ordinal chain, root first.
    pub fn ordinals(&self) -> &[u32] {
        &self.0
    }

    /// Reconstructs a path from its ordinal chain (as decoded from the
    /// wire).
    ///
    /// # Panics
    /// Panics if `ordinals` is empty; an empty chain identifies no thread.
    pub fn from_ordinals(ordinals: Vec<u32>) -> Self {
        assert!(!ordinals.is_empty(), "a virtual thread id needs at least the root ordinal");
        VtPath(ordinals)
    }

    /// Depth of the spawn chain (the root is depth 1).
    pub fn depth(&self) -> usize {
        self.0.len()
    }
}

impl fmt::Display for VtPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("t")?;
        for (i, o) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{o}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_scheduling_independent_keys() {
        // Two replicas spawn the same tree in different global orders; the
        // per-parent ordinals still produce identical ids.
        let root = VtPath::root();
        let a = root.child(0);
        let b = root.child(1);
        let a_child = a.child(0);
        assert_ne!(a, b);
        assert_eq!(a_child.ordinals(), &[0, 0, 0]);
        assert_eq!(a_child.depth(), 3);
    }

    #[test]
    fn roundtrip_through_ordinals() {
        let p = VtPath::root().child(3).child(1);
        let q = VtPath::from_ordinals(p.ordinals().to_vec());
        assert_eq!(p, q);
    }

    #[test]
    #[should_panic(expected = "at least the root ordinal")]
    fn empty_chain_rejected() {
        let _ = VtPath::from_ordinals(vec![]);
    }

    #[test]
    fn display() {
        assert_eq!(VtPath::root().to_string(), "t0");
        assert_eq!(VtPath::root().child(5).to_string(), "t0.5");
    }
}
