//! The simulated environment: the shared external *world* and each
//! replica's volatile view of it.
//!
//! The paper (§3.4) splits environment state into *stable* state, which
//! survives a replica failure (file contents, the console an operator
//! already read), and *volatile* state, which dies with the primary (its
//! open-file table, current offsets). [`World`] models the stable,
//! externally observable side — it is shared by both replicas of a pair —
//! while [`SimEnv`] holds one replica's volatile state plus its
//! non-deterministic input sources (wall clock skew, a private RNG).
//!
//! Every output action carries an `output_id` assigned at output commit;
//! the world records applied ids, which is what makes outputs *testable*
//! (R5): a recovering backup can ask [`World::output_applied`] whether the
//! uncertain last output happened before the crash.

use ftjvm_netsim::SimTime;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::rc::Rc;

/// One line that reached the external console.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsoleLine {
    /// The output id committed for this line.
    pub output_id: u64,
    /// Which replica performed it (diagnostic only).
    pub replica: String,
    /// The text.
    pub text: String,
}

/// One message that reached a remote socket peer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketMsg {
    /// The output id committed for this send.
    pub output_id: u64,
    /// Destination peer name.
    pub peer: String,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

/// The stable, externally observable environment shared by a replica pair.
#[derive(Debug, Default)]
pub struct World {
    files: BTreeMap<String, Vec<u8>>,
    console: Vec<ConsoleLine>,
    sockets: Vec<SocketMsg>,
    applied: BTreeSet<u64>,
}

/// A shared handle to the [`World`].
pub type SharedWorld = Rc<RefCell<World>>;

impl World {
    /// Creates an empty world behind a shared handle.
    pub fn shared() -> SharedWorld {
        Rc::new(RefCell::new(World::default()))
    }

    /// Pre-populates a file (test/workload setup).
    pub fn put_file(&mut self, name: &str, bytes: Vec<u8>) {
        self.files.insert(name.to_string(), bytes);
    }

    /// Reads a file's current contents.
    pub fn file(&self, name: &str) -> Option<&[u8]> {
        self.files.get(name).map(|v| v.as_slice())
    }

    /// Ensures a file exists (open-with-create). Idempotent.
    pub fn ensure_file(&mut self, name: &str) {
        self.files.entry(name.to_string()).or_default();
    }

    /// File length, if it exists.
    pub fn file_len(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(|v| v.len())
    }

    /// Reads up to `len` bytes at `offset`.
    pub fn read_file_at(&self, name: &str, offset: usize, len: usize) -> Vec<u8> {
        match self.files.get(name) {
            Some(data) if offset < data.len() => {
                data[offset..(offset + len).min(data.len())].to_vec()
            }
            _ => Vec::new(),
        }
    }

    /// Writes `bytes` at `offset` (extending the file if needed) under
    /// `output_id`. Writes are idempotent-by-id: re-applying an id that
    /// already ran is a no-op, which is how the testable-output layer gives
    /// exactly-once file output.
    pub fn write_file_at(&mut self, output_id: u64, name: &str, offset: usize, bytes: &[u8]) {
        if !self.applied.insert(output_id) {
            return;
        }
        let data = self.files.entry(name.to_string()).or_default();
        if data.len() < offset + bytes.len() {
            data.resize(offset + bytes.len(), 0);
        }
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Appends a console line under `output_id`.
    ///
    /// Deliberately **not** deduplicated: a replication layer that replays
    /// an already-performed console output produces a visible duplicate
    /// line, which the test suite checks for. Exactly-once must come from
    /// the protocol (output commit + `test`), not from the environment.
    pub fn println(&mut self, output_id: u64, replica: &str, text: &str) {
        self.applied.insert(output_id);
        self.console.push(ConsoleLine {
            output_id,
            replica: replica.to_string(),
            text: text.to_string(),
        });
    }

    /// Delivers a socket message to `peer` under `output_id`.
    ///
    /// Socket sends are the paper's canonical non-idempotent output
    /// ("replaying messages on a socket would not recover the state at
    /// the backup… An extra layer must be added to make sending messages
    /// either an idempotent or testable operation"). The extra layer here
    /// tags every send with its committed output id and the receiver
    /// discards retransmissions — TCP-style sequence-number dedup, which
    /// is how a recovering backup can safely re-send an uncertain message
    /// whose result record was lost. (The console stays un-deduplicated
    /// as the naked output that exposes commit-protocol bugs.)
    pub fn socket_send(&mut self, output_id: u64, peer: &str, payload: &[u8]) {
        if !self.applied.insert(output_id) {
            return; // retransmission of an already-delivered send
        }
        self.sockets.push(SocketMsg {
            output_id,
            peer: peer.to_string(),
            payload: payload.to_vec(),
        });
    }

    /// Every message delivered to `peer`, in arrival order.
    pub fn socket_stream(&self, peer: &str) -> Vec<&SocketMsg> {
        self.sockets.iter().filter(|m| m.peer == peer).collect()
    }

    /// All socket messages, in arrival order.
    pub fn sockets(&self) -> &[SocketMsg] {
        &self.sockets
    }

    /// The testable-output query (`test` in the SE-handler interface): did
    /// output `id` reach the environment?
    pub fn output_applied(&self, id: u64) -> bool {
        self.applied.contains(&id)
    }

    /// All console lines, in arrival order.
    pub fn console(&self) -> &[ConsoleLine] {
        &self.console
    }

    /// Console texts only (convenient for output-equivalence assertions).
    pub fn console_texts(&self) -> Vec<String> {
        self.console.iter().map(|l| l.text.clone()).collect()
    }
}

/// Error returned by descriptor-based file operations when the virtual
/// descriptor is not open (closed, never opened, or lost in a fail-stop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnknownDescriptor;

impl std::fmt::Display for UnknownDescriptor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("unknown file descriptor")
    }
}

impl std::error::Error for UnknownDescriptor {}

/// One replica's open socket connection: peer plus the volatile count of
/// messages sent so far (the sequence number the peer expects next).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocketConn {
    /// Remote peer name.
    pub peer: String,
    /// Messages sent on this connection so far.
    pub sent: u64,
}

/// One replica's open file: name plus the volatile offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenFile {
    /// File name in the world.
    pub name: String,
    /// Current read/write offset.
    pub offset: usize,
}

/// One replica's environment: the shared world plus volatile per-replica
/// state and non-deterministic input sources.
#[derive(Debug)]
pub struct SimEnv {
    /// Replica name (diagnostics and console attribution).
    pub replica: String,
    world: SharedWorld,
    /// This replica's wall-clock skew relative to simulated time; differing
    /// skews are what make `sys.clock` non-deterministic across replicas.
    pub clock_skew: SimTime,
    rng: StdRng,
    files: BTreeMap<u64, OpenFile>,
    next_vfd: u64,
    socks: BTreeMap<u64, SocketConn>,
    next_sd: u64,
}

impl SimEnv {
    /// The raw RNG stream position (deterministic state snapshots).
    pub(crate) fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rewinds/forwards the RNG to a captured stream position.
    pub(crate) fn set_rng_state(&mut self, state: u64) {
        self.rng = StdRng::from_state(state);
    }
}

impl SimEnv {
    /// Creates a replica environment over `world` with its own clock skew
    /// and RNG seed (the replica's ND input sources).
    pub fn new(replica: &str, world: SharedWorld, clock_skew: SimTime, rng_seed: u64) -> Self {
        SimEnv {
            replica: replica.to_string(),
            world,
            clock_skew,
            rng: StdRng::seed_from_u64(rng_seed),
            files: BTreeMap::new(),
            next_vfd: 1,
            socks: BTreeMap::new(),
            next_sd: 1,
        }
    }

    /// Shared world handle.
    pub fn world(&self) -> &SharedWorld {
        &self.world
    }

    /// This replica's wall clock in milliseconds (simulated now + skew).
    pub fn wall_clock_ms(&self, now: SimTime) -> i64 {
        (now + self.clock_skew).as_millis() as i64
    }

    /// A non-deterministic integer in `[0, bound)` from the replica's
    /// private RNG (`bound <= 0` yields 0).
    pub fn rand(&mut self, bound: i64) -> i64 {
        if bound <= 0 {
            0
        } else {
            self.rng.gen_range(0..bound)
        }
    }

    /// Opens (creating if absent) `name`, returning a virtual file
    /// descriptor. `forced_vfd` installs the descriptor the primary logged,
    /// so replayed opens bind the backup's volatile state to the id the
    /// application state already contains.
    pub fn open(&mut self, name: &str, forced_vfd: Option<u64>) -> u64 {
        self.world.borrow_mut().ensure_file(name);
        let vfd = match forced_vfd {
            Some(v) => {
                self.next_vfd = self.next_vfd.max(v + 1);
                v
            }
            None => {
                let v = self.next_vfd;
                self.next_vfd += 1;
                v
            }
        };
        self.files.insert(vfd, OpenFile { name: name.to_string(), offset: 0 });
        vfd
    }

    /// Closes a descriptor. Closing an unknown descriptor is an error the
    /// caller turns into an exception.
    pub fn close(&mut self, vfd: u64) -> Result<(), UnknownDescriptor> {
        self.files.remove(&vfd).map(|_| ()).ok_or(UnknownDescriptor)
    }

    /// Reads up to `len` bytes at the current offset, advancing it.
    ///
    /// # Errors
    /// Fails if the descriptor is unknown.
    pub fn read(&mut self, vfd: u64, len: usize) -> Result<Vec<u8>, UnknownDescriptor> {
        let f = self.files.get_mut(&vfd).ok_or(UnknownDescriptor)?;
        let data = self.world.borrow().read_file_at(&f.name, f.offset, len);
        f.offset += data.len();
        Ok(data)
    }

    /// Writes `bytes` at the current offset under `output_id`, advancing
    /// the offset. Returns bytes written.
    ///
    /// # Errors
    /// Fails if the descriptor is unknown.
    pub fn write(
        &mut self,
        vfd: u64,
        bytes: &[u8],
        output_id: u64,
    ) -> Result<usize, UnknownDescriptor> {
        let f = self.files.get_mut(&vfd).ok_or(UnknownDescriptor)?;
        self.world.borrow_mut().write_file_at(output_id, &f.name, f.offset, bytes);
        f.offset += bytes.len();
        Ok(bytes.len())
    }

    /// Seeks to an absolute offset (an idempotent output in the paper's
    /// taxonomy).
    ///
    /// # Errors
    /// Fails if the descriptor is unknown.
    pub fn seek(&mut self, vfd: u64, offset: usize) -> Result<(), UnknownDescriptor> {
        let f = self.files.get_mut(&vfd).ok_or(UnknownDescriptor)?;
        f.offset = offset;
        Ok(())
    }

    /// Current file size for the descriptor.
    ///
    /// # Errors
    /// Fails if the descriptor is unknown.
    pub fn size(&mut self, vfd: u64) -> Result<usize, UnknownDescriptor> {
        let f = self.files.get(&vfd).ok_or(UnknownDescriptor)?;
        Ok(self.world.borrow().file_len(&f.name).unwrap_or(0))
    }

    /// Current offset for the descriptor (used by SE-handler `log`).
    pub fn offset(&self, vfd: u64) -> Option<usize> {
        self.files.get(&vfd).map(|f| f.offset)
    }

    /// Prints a console line under `output_id`.
    pub fn println(&mut self, output_id: u64, text: &str) {
        self.world.borrow_mut().println(output_id, &self.replica, text);
    }

    /// Snapshot of the volatile open-file table (for SE-handler `log`).
    pub fn open_files(&self) -> impl Iterator<Item = (u64, &OpenFile)> + '_ {
        self.files.iter().map(|(k, v)| (*k, v))
    }

    /// The next virtual descriptor that would be handed out (SE-handler
    /// `log` snapshots this so `restore` can prevent descriptor reuse).
    pub fn peek_next_vfd(&self) -> u64 {
        self.next_vfd
    }

    /// Forces the next-descriptor counter (SE-handler `restore`). Only
    /// raises it; lowering would risk descriptor collisions.
    pub fn set_next_vfd(&mut self, next: u64) {
        self.next_vfd = self.next_vfd.max(next);
    }

    /// Installs an open-file entry directly (SE-handler `restore`).
    pub fn restore_open_file(&mut self, vfd: u64, name: &str, offset: usize) {
        self.world.borrow_mut().ensure_file(name);
        self.next_vfd = self.next_vfd.max(vfd + 1);
        self.files.insert(vfd, OpenFile { name: name.to_string(), offset });
    }

    /// Opens a connection to `peer`, returning a virtual socket
    /// descriptor. `forced_sd` binds the descriptor the primary logged.
    pub fn sock_connect(&mut self, peer: &str, forced_sd: Option<u64>) -> u64 {
        let sd = match forced_sd {
            Some(v) => {
                self.next_sd = self.next_sd.max(v + 1);
                v
            }
            None => {
                let v = self.next_sd;
                self.next_sd += 1;
                v
            }
        };
        self.socks.insert(sd, SocketConn { peer: peer.to_string(), sent: 0 });
        sd
    }

    /// Sends `payload` on connection `sd` under `output_id`, advancing the
    /// volatile sent counter. Returns bytes sent.
    ///
    /// # Errors
    /// Fails if the descriptor is unknown.
    pub fn sock_send(
        &mut self,
        sd: u64,
        payload: &[u8],
        output_id: u64,
    ) -> Result<usize, UnknownDescriptor> {
        let c = self.socks.get_mut(&sd).ok_or(UnknownDescriptor)?;
        self.world.borrow_mut().socket_send(output_id, &c.peer, payload);
        c.sent += 1;
        Ok(payload.len())
    }

    /// Closes a socket descriptor.
    ///
    /// # Errors
    /// Fails if the descriptor is unknown.
    pub fn sock_close(&mut self, sd: u64) -> Result<(), UnknownDescriptor> {
        self.socks.remove(&sd).map(|_| ()).ok_or(UnknownDescriptor)
    }

    /// Snapshot of the volatile socket table (SE-handler `log`).
    pub fn open_sockets(&self) -> impl Iterator<Item = (u64, &SocketConn)> + '_ {
        self.socks.iter().map(|(k, v)| (*k, v))
    }

    /// Installs a socket entry directly (SE-handler `restore`).
    pub fn restore_socket(&mut self, sd: u64, peer: &str, sent: u64) {
        self.next_sd = self.next_sd.max(sd + 1);
        self.socks.insert(sd, SocketConn { peer: peer.to_string(), sent });
    }

    /// Forces the next-socket-descriptor counter (SE-handler `restore`).
    pub fn set_next_sd(&mut self, next: u64) {
        self.next_sd = self.next_sd.max(next);
    }

    /// The next socket descriptor that would be handed out.
    pub fn peek_next_sd(&self) -> u64 {
        self.next_sd
    }

    /// Fail-stop: drops all volatile state, leaving only the world.
    pub fn fail(&mut self) {
        self.files.clear();
        self.socks.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn world_write_is_idempotent_by_id() {
        let w = World::shared();
        w.borrow_mut().write_file_at(1, "f", 0, b"abc");
        w.borrow_mut().write_file_at(1, "f", 0, b"XYZ"); // same id: ignored
        assert_eq!(w.borrow().file("f").unwrap(), b"abc");
        w.borrow_mut().write_file_at(2, "f", 1, b"Z");
        assert_eq!(w.borrow().file("f").unwrap(), b"aZc");
        assert!(w.borrow().output_applied(1));
        assert!(!w.borrow().output_applied(9));
    }

    #[test]
    fn console_does_not_dedup() {
        let w = World::shared();
        w.borrow_mut().println(1, "p", "hello");
        w.borrow_mut().println(1, "b", "hello");
        assert_eq!(w.borrow().console().len(), 2, "duplicates must be visible");
    }

    #[test]
    fn env_file_io_roundtrip() {
        let w = World::shared();
        let mut env = SimEnv::new("p", w.clone(), SimTime::ZERO, 1);
        let fd = env.open("data", None);
        assert_eq!(env.write(fd, b"hello world", 1).unwrap(), 11);
        env.seek(fd, 6).unwrap();
        assert_eq!(env.read(fd, 5).unwrap(), b"world");
        assert_eq!(env.size(fd).unwrap(), 11);
        assert_eq!(env.offset(fd), Some(11));
        env.close(fd).unwrap();
        assert!(env.read(fd, 1).is_err());
    }

    #[test]
    fn forced_vfd_binds_logged_descriptor() {
        let w = World::shared();
        let mut env = SimEnv::new("b", w, SimTime::ZERO, 2);
        let fd = env.open("x", Some(42));
        assert_eq!(fd, 42);
        // Future unforced opens do not collide.
        let fd2 = env.open("y", None);
        assert!(fd2 > 42);
    }

    #[test]
    fn fail_drops_volatile_keeps_stable() {
        let w = World::shared();
        let mut env = SimEnv::new("p", w.clone(), SimTime::ZERO, 3);
        let fd = env.open("f", None);
        env.write(fd, b"persisted", 7).unwrap();
        env.fail();
        assert!(env.read(fd, 1).is_err(), "volatile fd table lost");
        assert_eq!(w.borrow().file("f").unwrap(), b"persisted", "stable contents survive");
    }

    #[test]
    fn clocks_differ_across_replicas() {
        let w = World::shared();
        let p = SimEnv::new("p", w.clone(), SimTime::from_millis(5), 1);
        let b = SimEnv::new("b", w, SimTime::from_millis(11), 1);
        let now = SimTime::from_millis(100);
        assert_ne!(p.wall_clock_ms(now), b.wall_clock_ms(now));
    }

    #[test]
    fn socket_roundtrip_and_dedup() {
        let w = World::shared();
        let mut env = SimEnv::new("p", w.clone(), SimTime::ZERO, 5);
        let sd = env.sock_connect("peer", None);
        assert_eq!(env.sock_send(sd, b"one", 1).unwrap(), 3);
        assert_eq!(env.sock_send(sd, b"two", 2).unwrap(), 3);
        // Retransmission of id 1 is discarded by the receiving layer.
        env.sock_send(sd, b"one", 1).unwrap();
        let world = w.borrow();
        let stream = world.socket_stream("peer");
        assert_eq!(stream.len(), 2);
        assert_eq!(stream[0].payload, b"one");
        assert_eq!(stream[1].payload, b"two");
        drop(world);
        assert_eq!(env.open_sockets().next().unwrap().1.sent, 3);
        env.sock_close(sd).unwrap();
        assert!(env.sock_send(sd, b"x", 9).is_err());
    }

    #[test]
    fn socket_restore_binds_descriptor_and_count() {
        let w = World::shared();
        let mut env = SimEnv::new("b", w, SimTime::ZERO, 5);
        env.restore_socket(7, "peer", 42);
        let (sd, conn) = env.open_sockets().next().unwrap();
        assert_eq!(sd, 7);
        assert_eq!(conn.sent, 42);
        // Fresh descriptors do not collide.
        assert!(env.sock_connect("other", None) > 7);
        // Forced descriptors bind exactly (replayed connects).
        assert_eq!(env.sock_connect("third", Some(3)), 3);
    }

    #[test]
    fn fail_drops_sockets_too() {
        let w = World::shared();
        let mut env = SimEnv::new("p", w, SimTime::ZERO, 5);
        let sd = env.sock_connect("peer", None);
        env.fail();
        assert!(env.sock_send(sd, b"x", 1).is_err());
    }

    #[test]
    fn rand_is_seed_deterministic() {
        let w = World::shared();
        let mut a = SimEnv::new("p", w.clone(), SimTime::ZERO, 9);
        let mut b = SimEnv::new("p", w, SimTime::ZERO, 9);
        let xs: Vec<i64> = (0..5).map(|_| a.rand(100)).collect();
        let ys: Vec<i64> = (0..5).map(|_| b.rand(100)).collect();
        assert_eq!(xs, ys);
        assert_eq!(a.rand(0), 0);
    }
}
