//! Property-based tests on the VM's core data structures and invariants:
//! heap reachability under GC, monitor state-machine sanity, interpreter
//! arithmetic against a Rust oracle, and verifier acceptance of generated
//! structured programs.

use ftjvm_netsim::SimTime;
use ftjvm_vm::class::builtin;
use ftjvm_vm::env::{SimEnv, World};
use ftjvm_vm::exec::{Vm, VmConfig};
use ftjvm_vm::heap::{Heap, HeapEntry};
use ftjvm_vm::monitor::Monitor;
use ftjvm_vm::native::NativeRegistry;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::{Cmp, NoopCoordinator, ObjRef, ThreadIdx, Value};
use proptest::prelude::*;
use std::collections::HashSet;

// ===== heap / GC =====

/// A random object graph: `n` objects, each with up to 3 reference fields
/// pointing at arbitrary earlier-or-later objects, plus a root set.
#[derive(Debug, Clone)]
struct GraphSpec {
    n: usize,
    edges: Vec<(usize, usize)>, // (from, to)
    roots: Vec<usize>,
}

fn graph_strategy() -> impl Strategy<Value = GraphSpec> {
    (2usize..40).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..n * 2);
        let roots = proptest::collection::vec(0..n, 0..5);
        (Just(n), edges, roots).prop_map(|(n, edges, roots)| GraphSpec { n, edges, roots })
    })
}

fn reachable(spec: &GraphSpec) -> HashSet<usize> {
    let mut seen: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = spec.roots.clone();
    while let Some(x) = stack.pop() {
        if seen.insert(x) {
            for (f, t) in &spec.edges {
                if *f == x && !seen.contains(t) {
                    stack.push(*t);
                }
            }
        }
    }
    seen
}

proptest! {
    /// Mark-sweep preserves exactly the reachable set: reachable objects
    /// survive with fields intact; unreachable objects are freed.
    #[test]
    fn gc_preserves_exactly_the_reachable_set(spec in graph_strategy()) {
        let classes = {
            let mut b = ProgramBuilder::new();
            let mut m = b.method("main", 1);
            m.ret_void();
            let e = m.build(&mut b);
            b.build(e).unwrap().classes
        };
        let mut heap = Heap::new(10_000, 1_000_000);
        let objs: Vec<ObjRef> =
            (0..spec.n).map(|_| heap.alloc_obj(builtin::OBJECT, 4).unwrap()).collect();
        // Install edges (field slot rotates 0..3).
        let mut slot_of = vec![0usize; spec.n];
        for (f, t) in &spec.edges {
            if slot_of[*f] < 4 {
                if let Some(HeapEntry::Obj { fields, .. }) = heap.get_mut(objs[*f]) {
                    fields[slot_of[*f]] = Value::Ref(objs[*t]);
                }
                slot_of[*f] += 1;
            }
        }
        // Only edges that actually fit in the 4 slots count.
        let mut installed = Vec::new();
        let mut counts = vec![0usize; spec.n];
        for (f, t) in &spec.edges {
            if counts[*f] < 4 {
                installed.push((*f, *t));
                counts[*f] += 1;
            }
        }
        let spec2 = GraphSpec { n: spec.n, edges: installed, roots: spec.roots.clone() };
        let expect = reachable(&spec2);
        let result = heap.collect(spec.roots.iter().map(|r| objs[*r]), &classes, false);
        prop_assert_eq!(result.live, expect.len());
        #[allow(clippy::needless_range_loop)]
        for i in 0..spec.n {
            prop_assert_eq!(heap.get(objs[i]).is_some(), expect.contains(&i), "object {}", i);
        }
        // Survivors' reference fields still point at live objects.
        for i in &expect {
            if let Some(HeapEntry::Obj { fields, .. }) = heap.get(objs[*i]) {
                for v in fields {
                    if let Value::Ref(r) = v {
                        prop_assert!(heap.get(*r).is_some(), "dangling field after GC");
                    }
                }
            }
        }
    }

    /// Slot reuse never resurrects old contents: allocate, free, reallocate
    /// — the new object is always null-initialized.
    #[test]
    fn freed_slots_are_reinitialized(rounds in 1usize..10, size in 1usize..8) {
        let classes = {
            let mut b = ProgramBuilder::new();
            let mut m = b.method("main", 1);
            m.ret_void();
            let e = m.build(&mut b);
            b.build(e).unwrap().classes
        };
        let mut heap = Heap::new(100, 1_000_000);
        for round in 0..rounds {
            let o = heap.alloc_obj(builtin::OBJECT, size as u16).unwrap();
            if let Some(HeapEntry::Obj { fields, .. }) = heap.get_mut(o) {
                for f in fields.iter_mut() {
                    *f = Value::Int(round as i64 + 100);
                }
            }
            heap.collect([], &classes, false); // o is unrooted: freed
            let o2 = heap.alloc_obj(builtin::OBJECT, size as u16).unwrap();
            if let Some(HeapEntry::Obj { fields, .. }) = heap.get(o2) {
                for f in fields {
                    prop_assert_eq!(*f, Value::Null);
                }
            }
        }
    }
}

// ===== monitors =====

#[derive(Debug, Clone, Copy)]
enum MonOp {
    Enter(u32),
    Exit(u32),
}

fn mon_ops() -> impl Strategy<Value = Vec<MonOp>> {
    proptest::collection::vec(
        prop_oneof![(0u32..4).prop_map(MonOp::Enter), (0u32..4).prop_map(MonOp::Exit)],
        0..200,
    )
}

proptest! {
    /// The monitor state machine against a reference model: ownership,
    /// recursion depth, and error cases all match.
    #[test]
    fn monitor_matches_reference_model(ops in mon_ops()) {
        let mut m = Monitor::default();
        let mut owner: Option<u32> = None;
        let mut depth: u32 = 0;
        for op in ops {
            match op {
                MonOp::Enter(t) => {
                    match owner {
                        None => {
                            prop_assert_eq!(
                                m.try_enter(ThreadIdx(t)),
                                ftjvm_vm::monitor::EnterResult::Acquired { recursive: false }
                            );
                            owner = Some(t);
                            depth = 1;
                        }
                        Some(o) if o == t => {
                            prop_assert_eq!(
                                m.try_enter(ThreadIdx(t)),
                                ftjvm_vm::monitor::EnterResult::Acquired { recursive: true }
                            );
                            depth += 1;
                        }
                        Some(o) => {
                            prop_assert_eq!(
                                m.try_enter(ThreadIdx(t)),
                                ftjvm_vm::monitor::EnterResult::Contended { owner: ThreadIdx(o) }
                            );
                        }
                    }
                }
                MonOp::Exit(t) => {
                    if owner == Some(t) {
                        let freed = m.exit(ThreadIdx(t)).unwrap();
                        depth -= 1;
                        prop_assert_eq!(freed, depth == 0);
                        if depth == 0 {
                            owner = None;
                        }
                    } else {
                        prop_assert!(m.exit(ThreadIdx(t)).is_err());
                    }
                }
            }
            prop_assert_eq!(m.owner, owner.map(ThreadIdx));
            prop_assert_eq!(m.recursion, depth);
        }
    }
}

// ===== interpreter arithmetic vs oracle =====

#[derive(Debug, Clone, Copy)]
enum ArithOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

fn apply(op: ArithOp, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        ArithOp::Add => a.wrapping_add(b),
        ArithOp::Sub => a.wrapping_sub(b),
        ArithOp::Mul => a.wrapping_mul(b),
        ArithOp::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        ArithOp::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        ArithOp::And => a & b,
        ArithOp::Or => a | b,
        ArithOp::Xor => a ^ b,
        ArithOp::Shl => a.wrapping_shl(b as u32 & 63),
        ArithOp::Shr => a.wrapping_shr(b as u32 & 63),
    })
}

fn arith_strategy() -> impl Strategy<Value = (Vec<(ArithOp, i64)>, i64)> {
    let op = prop_oneof![
        Just(ArithOp::Add),
        Just(ArithOp::Sub),
        Just(ArithOp::Mul),
        Just(ArithOp::Div),
        Just(ArithOp::Rem),
        Just(ArithOp::And),
        Just(ArithOp::Or),
        Just(ArithOp::Xor),
        Just(ArithOp::Shl),
        Just(ArithOp::Shr),
    ];
    (proptest::collection::vec((op, any::<i64>()), 1..24), any::<i64>())
}

proptest! {
    /// A chain of arithmetic ops computed by the interpreter equals the
    /// Rust oracle (Java wrapping semantics), including division-by-zero
    /// exception behavior.
    #[test]
    fn interpreter_arithmetic_matches_oracle((ops, start) in arith_strategy()) {
        let mut expected = Some(start);
        for (op, v) in &ops {
            expected = expected.and_then(|acc| apply(*op, acc, *v));
        }
        let mut b = ProgramBuilder::new();
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        m.push_i(start);
        for (op, v) in &ops {
            m.push_i(*v);
            match op {
                ArithOp::Add => m.add(),
                ArithOp::Sub => m.sub(),
                ArithOp::Mul => m.mul(),
                ArithOp::Div => m.div(),
                ArithOp::Rem => m.rem(),
                ArithOp::And => m.band(),
                ArithOp::Or => m.bor(),
                ArithOp::Xor => m.bxor(),
                ArithOp::Shl => m.shl(),
                ArithOp::Shr => m.shr(),
            };
        }
        m.invoke_native(print, 1).ret_void();
        let entry = m.build(&mut b);
        let program = std::sync::Arc::new(b.build(entry).unwrap());
        let world = World::shared();
        let env = SimEnv::new("p", world.clone(), SimTime::ZERO, 1);
        let mut vm = Vm::new(program, NativeRegistry::with_builtins(), env, VmConfig::default()).unwrap();
        let report = vm.run(&mut NoopCoordinator::new()).unwrap();
        match expected {
            Some(v) => {
                prop_assert!(report.uncaught.is_empty());
                let console = world.borrow().console_texts();
                prop_assert_eq!(console, vec![v.to_string()]);
            }
            None => {
                // Division by zero: uncaught ArithmeticException.
                prop_assert_eq!(report.uncaught.len(), 1);
                prop_assert_eq!(report.uncaught[0].1, ftjvm_vm::class::excode::ARITHMETIC);
            }
        }
    }

    /// Structured random programs (nested counted loops with accumulator
    /// updates) always verify and compute what the oracle computes.
    #[test]
    fn structured_loops_match_oracle(
        loops in proptest::collection::vec((1i64..6, 1i64..20, -50i64..50), 1..4)
    ) {
        // Oracle: acc starts 0; for each (depth-level) loop: run `reps`
        // times adding `delta` each time; loops nest multiplicatively.
        let mut expected: i64 = 0;
        let mut mult: i64 = 1;
        for (_, reps, delta) in &loops {
            mult *= reps;
            expected += mult * delta;
        }
        // Program: nested loops; innermost adds delta of each level — but
        // build equivalently: sum over levels of (product of reps up to
        // level) * delta. Emit one loop nest per level.
        let mut b = ProgramBuilder::new();
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        m.push_i(0).store(1); // acc
        let emit_nest = |m: &mut ftjvm_vm::program::MethodBuilder, level: usize| {
            // nested loops 0..=level, innermost adds loops[level].2
            fn nest(
                m: &mut ftjvm_vm::program::MethodBuilder,
                loops: &[(i64, i64, i64)],
                level: usize,
                depth: usize,
                delta: i64,
            ) {
                let local = (2 + depth) as u16;
                let done = m.new_label();
                m.push_i(loops[depth].1).store(local);
                let top = m.bind_new_label();
                m.load(local).if_not(done);
                if depth == level {
                    m.load(1).push_i(delta).add().store(1);
                } else {
                    nest(m, loops, level, depth + 1, delta);
                }
                m.inc(local, -1).goto(top);
                m.bind(done);
            }
            nest(m, &loops, level, 0, loops[level].2);
        };
        for level in 0..loops.len() {
            emit_nest(&mut m, level);
        }
        m.load(1).invoke_native(print, 1).ret_void();
        let entry = m.build(&mut b);
        let program = std::sync::Arc::new(b.build(entry).unwrap());
        let world = World::shared();
        let env = SimEnv::new("p", world.clone(), SimTime::ZERO, 1);
        let mut vm = Vm::new(program, NativeRegistry::with_builtins(), env, VmConfig::default()).unwrap();
        let report = vm.run(&mut NoopCoordinator::new()).unwrap();
        prop_assert!(report.uncaught.is_empty());
        let console = world.borrow().console_texts();
        prop_assert_eq!(console, vec![expected.to_string()]);
    }

    /// Same-seed determinism holds for any seed: two identical VMs produce
    /// identical counters and timing.
    #[test]
    fn any_seed_is_deterministic(seed in any::<u64>()) {
        let program = {
            let mut b = ProgramBuilder::new();
            let print = b.import_native("sys.print_int", 1, false);
            let spawn = b.import_native("sys.spawn", 2, false);
            let yield_n = b.import_native("sys.yield", 0, false);
            let cls = b.add_class("D", builtin::OBJECT, 0, 2);
            let mut inc = b.method("inc", 1);
            inc.static_of(cls).synchronized();
            inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
            let inc = inc.build(&mut b);
            let mut fin = b.method("fin", 1);
            fin.static_of(cls).synchronized();
            fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
            let fin = fin.build(&mut b);
            let mut w = b.method("w", 1);
            let done = w.new_label();
            w.push_i(25).store(1);
            let top = w.bind_new_label();
            w.load(1).if_not(done);
            w.push_i(0).invoke(inc);
            w.inc(1, -1).goto(top);
            w.bind(done).push_i(0).invoke(fin).ret_void();
            let w = w.build(&mut b);
            let mut m = b.method("main", 1);
            m.push_i(0).put_static(cls, 0);
            m.push_i(0).put_static(cls, 1);
            m.push_method(w).push_i(0).invoke_native(spawn, 2);
            m.push_method(w).push_i(0).invoke_native(spawn, 2);
            let wait = m.bind_new_label();
            let ready = m.new_label();
            m.get_static(cls, 1).push_i(2).icmp(Cmp::Eq).if_true(ready);
            m.invoke_native(yield_n, 0).goto(wait);
            m.bind(ready);
            m.get_static(cls, 0).invoke_native(print, 1).ret_void();
            let e = m.build(&mut b);
            std::sync::Arc::new(b.build(e).unwrap())
        };
        let run = |seed: u64| {
            let world = World::shared();
            let env = SimEnv::new("p", world.clone(), SimTime::ZERO, 9);
            let cfg = VmConfig { sched_seed: seed, quantum: 17, quantum_jitter: 13, ..VmConfig::default() };
            let mut vm = Vm::new(program.clone(), NativeRegistry::with_builtins(), env, cfg).unwrap();
            let r = vm.run(&mut NoopCoordinator::new()).unwrap();
            let texts = world.borrow().console_texts();
            (r.counters, r.acct.total(), texts)
        };
        let a = run(seed);
        let b2 = run(seed);
        prop_assert_eq!(a.0, b2.0);
        prop_assert_eq!(a.1, b2.1);
        prop_assert_eq!(a.2.clone(), b2.2);
        prop_assert_eq!(a.2, vec!["50".to_string()]);
    }
}
