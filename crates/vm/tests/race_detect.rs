//! End-to-end tests of the Eraser-style race detector: the R4A verifier
//! the paper suggests running before trusting a program to replicated
//! lock synchronization.

use ftjvm_netsim::SimTime;
use ftjvm_vm::class::builtin;
use ftjvm_vm::env::{SimEnv, World};
use ftjvm_vm::exec::{Vm, VmConfig};
use ftjvm_vm::native::NativeRegistry;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::race::Loc;
use ftjvm_vm::{Cmp, MethodId, NoopCoordinator, Program};
use std::sync::Arc;

fn run_with_detector(build: impl FnOnce(&mut ProgramBuilder) -> MethodId) -> ftjvm_vm::RunReport {
    let mut b = ProgramBuilder::new();
    let entry = build(&mut b);
    let program = Arc::new(b.build(entry).expect("verifies"));
    run_built(program)
}

fn run_built(program: Arc<Program>) -> ftjvm_vm::RunReport {
    let world = World::shared();
    let env = SimEnv::new("solo", world, SimTime::ZERO, 7);
    let cfg =
        VmConfig { race_detect: true, quantum: 23, quantum_jitter: 17, ..VmConfig::default() };
    let mut vm = Vm::new(program, NativeRegistry::with_builtins(), env, cfg).unwrap();
    vm.run(&mut NoopCoordinator::new()).expect("run succeeds")
}

/// Builder for an n-worker program where the shared-counter increment body
/// is chosen by the caller.
fn workers(
    b: &mut ProgramBuilder,
    n: i64,
    body: impl Fn(&mut ftjvm_vm::program::MethodBuilder, ftjvm_vm::ClassId),
) -> MethodId {
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("Shared", builtin::OBJECT, 0, 2);
    let mut fin = b.method("fin", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
    let fin = fin.build(b);
    // Synchronized getter: even the *join spin* must obey the locking
    // discipline, or the detector (correctly) flags the done-counter.
    let mut done_count = b.method("done_count", 1);
    done_count.static_of(cls).synchronized();
    done_count.get_static(cls, 1).ret_val();
    let done_count = done_count.build(b);
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(30).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    body(&mut w, cls);
    w.inc(1, -1).goto(top);
    w.bind(done).push_i(0).invoke(fin).ret_void();
    let w = w.build(b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..n {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait = m.bind_new_label();
    let ready = m.new_label();
    m.push_i(0).invoke(done_count).push_i(n).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait);
    m.bind(ready).ret_void();
    m.build(b)
}

#[test]
fn detector_flags_the_unsynchronized_counter() {
    let report = run_with_detector(|b| {
        workers(b, 3, |w, cls| {
            // Unprotected read-modify-write.
            w.get_static(cls, 0).push_i(1).add().put_static(cls, 0);
        })
    });
    assert!(!report.races.is_empty(), "the racy static must be flagged");
    assert!(
        report.races.iter().any(|r| matches!(r.loc, Loc::Static(c, 0) if c.0 >= 4)),
        "the flagged location is the shared counter: {:?}",
        report.races
    );
}

#[test]
fn detector_passes_the_synchronized_counter() {
    let report = run_with_detector(|b| {
        workers(b, 3, |w, cls| {
            w.class_obj(cls).monitor_enter();
            w.get_static(cls, 0).push_i(1).add().put_static(cls, 0);
            w.class_obj(cls).monitor_exit();
        })
    });
    assert!(report.races.is_empty(), "consistently locked: {:?}", report.races);
}

#[test]
fn detector_passes_synchronized_methods_too() {
    let report = run_with_detector(|b| {
        // Shared counter behind a synchronized static method.
        let spawn = b.import_native("sys.spawn", 2, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        let cls = b.add_class("S", builtin::OBJECT, 0, 2);
        let mut inc = b.method("inc", 1);
        inc.static_of(cls).synchronized();
        inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
        let inc = inc.build(b);
        let mut fin = b.method("fin", 1);
        fin.static_of(cls).synchronized();
        fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
        let fin = fin.build(b);
        let mut done_count = b.method("done_count", 1);
        done_count.static_of(cls).synchronized();
        done_count.get_static(cls, 1).ret_val();
        let done_count = done_count.build(b);
        let mut w = b.method("w", 1);
        let done = w.new_label();
        w.push_i(40).store(1);
        let top = w.bind_new_label();
        w.load(1).if_not(done);
        w.push_i(0).invoke(inc);
        w.inc(1, -1).goto(top);
        w.bind(done).push_i(0).invoke(fin).ret_void();
        let w = w.build(b);
        let mut m = b.method("main", 1);
        m.push_i(0).put_static(cls, 0);
        m.push_i(0).put_static(cls, 1);
        for _ in 0..3 {
            m.push_method(w).push_i(0).invoke_native(spawn, 2);
        }
        let wait = m.bind_new_label();
        let ready = m.new_label();
        m.push_i(0).invoke(done_count).push_i(3).icmp(Cmp::Eq).if_true(ready);
        m.invoke_native(yield_n, 0).goto(wait);
        m.bind(ready).ret_void();
        m.build(b)
    });
    assert!(report.races.is_empty(), "{:?}", report.races);
}

#[test]
fn read_only_shared_data_is_not_flagged() {
    let report = run_with_detector(|b| {
        let spawn = b.import_native("sys.spawn", 2, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        let print = b.import_native("sys.print_int", 1, false);
        let cls = b.add_class("RO", builtin::OBJECT, 0, 3); // 0=table, 1=done, 2=unused
                                                            // Readers sum the shared (immutable after setup) table without locks.
        let mut fin = b.method("fin", 1);
        fin.static_of(cls).synchronized();
        fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
        let fin = fin.build(b);
        let mut w = b.method("reader", 1);
        let done = w.new_label();
        w.push_i(0).store(2);
        w.push_i(0).store(1);
        let top = w.bind_new_label();
        w.load(1).push_i(8).icmp(Cmp::Ge).if_true(done);
        w.get_static(cls, 0).load(1).aload().load(2).add().store(2);
        w.inc(1, 1).goto(top);
        w.bind(done);
        w.load(2).invoke_native(print, 1);
        w.push_i(0).invoke(fin).ret_void();
        let w = w.build(b);
        let mut m = b.method("main", 1);
        // Setup (single-threaded): fill the table, then spawn readers.
        m.push_i(8).new_array().put_static(cls, 0);
        m.push_i(0).store(1);
        let fill_done = m.new_label();
        let fill = m.bind_new_label();
        m.load(1).push_i(8).icmp(Cmp::Ge).if_true(fill_done);
        m.get_static(cls, 0).load(1).load(1).astore();
        m.inc(1, 1).goto(fill);
        m.bind(fill_done);
        m.push_i(0).put_static(cls, 1);
        for _ in 0..3 {
            m.push_method(w).push_i(0).invoke_native(spawn, 2);
        }
        let wait = m.bind_new_label();
        let ready = m.new_label();
        m.get_static(cls, 1).push_i(3).icmp(Cmp::Eq).if_true(ready);
        m.invoke_native(yield_n, 0).goto(wait);
        m.bind(ready).ret_void();
        m.build(b)
    });
    // The table array and its contents are only *read* by multiple
    // threads; the done-counter is locked. Nothing to flag — except the
    // done-flag spin-read by main, which IS an unsynchronized read of a
    // written static... main reads cls.1 unlocked while workers write it
    // under the lock: lockset empties on main's read => flagged. That is
    // a true finding (the paper's Figure 1 is exactly this pattern), so
    // assert the *array* is not flagged rather than zero findings.
    assert!(
        !report.races.iter().any(|r| matches!(r.loc, Loc::Array(_))),
        "read-only array must not be flagged: {:?}",
        report.races
    );
}

#[test]
fn detector_predicts_lock_sync_replay_safety() {
    // The workflow the paper suggests: run the detector; only race-free
    // programs go to lock-sync replication. Cross-check the prediction
    // against actual replay behavior for the clean program.
    let mut b = ProgramBuilder::new();
    let entry = workers(&mut b, 3, |w, cls| {
        w.class_obj(cls).monitor_enter();
        w.get_static(cls, 0).push_i(1).add().put_static(cls, 0);
        w.class_obj(cls).monitor_exit();
    });
    let program = Arc::new(b.build(entry).unwrap());
    let report = run_built(program);
    assert!(report.races.is_empty(), "detector: safe for lock-sync");
}
