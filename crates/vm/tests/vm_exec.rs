//! End-to-end execution tests for the virtual machine: arithmetic, control
//! flow, dispatch, exceptions, threads, monitors, wait/notify, natives,
//! garbage collection and determinism.

use ftjvm_netsim::SimTime;
use ftjvm_vm::class::builtin;
use ftjvm_vm::env::{SharedWorld, SimEnv, World};
use ftjvm_vm::exec::{RunReport, Vm, VmConfig};
use ftjvm_vm::native::NativeRegistry;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::{Cmp, MethodId, NoopCoordinator, Program, VmError};
use std::sync::Arc;

/// Builds a program, runs it with the given seed, returns the report and
/// console output.
fn run_seeded(
    build: impl FnOnce(&mut ProgramBuilder) -> MethodId,
    seed: u64,
    tweak: impl FnOnce(&mut VmConfig),
) -> (RunReport, Vec<String>, SharedWorld) {
    let mut b = ProgramBuilder::new();
    let entry = build(&mut b);
    let program = Arc::new(b.build(entry).expect("program verifies"));
    run_program(program, seed, tweak)
}

fn run_program(
    program: Arc<Program>,
    seed: u64,
    tweak: impl FnOnce(&mut VmConfig),
) -> (RunReport, Vec<String>, SharedWorld) {
    let world = World::shared();
    let env = SimEnv::new("solo", world.clone(), SimTime::ZERO, seed ^ 0xABCD);
    let mut cfg = VmConfig { sched_seed: seed, ..VmConfig::default() };
    tweak(&mut cfg);
    let mut vm = Vm::new(program, NativeRegistry::with_builtins(), env, cfg).expect("vm builds");
    let report = vm.run(&mut NoopCoordinator::new()).expect("run succeeds");
    let console = world.borrow().console_texts();
    (report, console, world)
}

fn run(build: impl FnOnce(&mut ProgramBuilder) -> MethodId) -> (RunReport, Vec<String>) {
    let (r, c, _) = run_seeded(build, 7, |_| {});
    (r, c)
}

#[test]
fn factorial_loop() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        let done = m.new_label();
        m.push_i(10).store(1); // i = 10
        m.push_i(1).store(2); // acc = 1
        let top = m.bind_new_label();
        m.load(1).if_not(done);
        m.load(2).load(1).mul().store(2);
        m.inc(1, -1).goto(top);
        m.bind(done);
        m.load(2).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["3628800"]);
}

#[test]
fn recursive_fibonacci() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        // fib(n) = n < 2 ? n : fib(n-1)+fib(n-2)
        let mut fib = b.method("fib", 1);
        let fib_id = fib.id();
        let base = fib.new_label();
        fib.load(0).push_i(2).icmp(Cmp::Lt).if_true(base);
        fib.load(0).push_i(1).sub().invoke(fib_id);
        fib.load(0).push_i(2).sub().invoke(fib_id);
        fib.add().ret_val();
        fib.bind(base).load(0).ret_val();
        let fib_id = fib.build(b);
        let mut m = b.method("main", 1);
        m.push_i(15).invoke(fib_id).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["610"]);
}

#[test]
fn virtual_dispatch_with_override() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let animal = b.add_class("Animal", builtin::OBJECT, 0, 0);
        let cat = b.add_class("Cat", animal, 0, 0);
        let speak = b.declare_vslot("speak", 1, true);
        let mut m1 = b.method("Animal.speak", 1);
        m1.instance_of(animal).push_i(1).ret_val();
        let m1 = m1.build(b);
        b.set_vtable(animal, speak, m1);
        let mut m2 = b.method("Cat.speak", 1);
        m2.instance_of(cat).push_i(2).ret_val();
        let m2 = m2.build(b);
        b.set_vtable(cat, speak, m2);
        let mut m = b.method("main", 1);
        m.new_obj(animal).invoke_virtual(speak, 1).invoke_native(print, 1);
        m.new_obj(cat).invoke_virtual(speak, 1).invoke_native(print, 1);
        m.ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["1", "2"]);
}

#[test]
fn inherited_vtable_entry() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let base = b.add_class("Base", builtin::OBJECT, 0, 0);
        let speak = b.declare_vslot("speak", 1, true);
        let mut m1 = b.method("Base.speak", 1);
        m1.instance_of(base).push_i(7).ret_val();
        let m1 = m1.build(b);
        b.set_vtable(base, speak, m1);
        // Subclass registered after the vtable entry inherits it.
        let derived = b.add_class("Derived", base, 0, 0);
        let mut m = b.method("main", 1);
        m.new_obj(derived).invoke_virtual(speak, 1).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["7"]);
}

#[test]
fn caught_division_by_zero() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        let try_start = m.new_label();
        let try_end = m.new_label();
        let catch = m.new_label();
        let done = m.new_label();
        m.bind(try_start);
        m.push_i(1).push_i(0).div().invoke_native(print, 1);
        m.bind(try_end);
        m.goto(done);
        m.bind(catch);
        // Print the exception code field instead.
        m.get_field(builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
        m.bind(done).ret_void();
        m.handler(try_start, try_end, Some(builtin::RUNTIME_EXCEPTION), catch);
        m.build(b)
    });
    assert_eq!(console, vec![ftjvm_vm::class::excode::ARITHMETIC.to_string()]);
}

#[test]
fn uncaught_exception_kills_thread_only() {
    let (report, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let spawn = b.import_native("sys.spawn", 2, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        // Child immediately dereferences null.
        let mut child = b.method("child", 1);
        child.push_null().get_field(0).pop().ret_void();
        let child = child.build(b);
        // Main spawns it, yields a few times, prints 5.
        let mut m = b.method("main", 1);
        m.push_method(child).push_i(0).invoke_native(spawn, 2);
        for _ in 0..4 {
            m.invoke_native(yield_n, 0);
        }
        m.push_i(5).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["5"]);
    assert_eq!(report.uncaught.len(), 1);
    assert_eq!(report.uncaught[0].1, ftjvm_vm::class::excode::NULL_POINTER);
}

#[test]
fn exception_unwinds_through_frames_and_releases_sync() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let cls = b.add_class("C", builtin::OBJECT, 0, 1);
        // synchronized static thrower: throws inside the lock.
        let mut thrower = b.method("thrower", 1);
        thrower.static_of(cls).synchronized();
        thrower
            .new_obj(builtin::RUNTIME_EXCEPTION)
            .dup()
            .push_i(42)
            .put_field(builtin::THROWABLE_CODE_SLOT);
        thrower.throw();
        let thrower = thrower.build(b);
        let mut m = b.method("main", 1);
        let try_start = m.new_label();
        let try_end = m.new_label();
        let catch = m.new_label();
        let done = m.new_label();
        m.bind(try_start);
        m.push_i(0).invoke(thrower);
        m.bind(try_end);
        m.goto(done);
        m.bind(catch);
        m.get_field(builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
        // The monitor must have been released during unwind: lock it again.
        m.class_obj(cls).monitor_enter();
        m.class_obj(cls).monitor_exit();
        m.push_i(99).invoke_native(print, 1);
        m.bind(done).ret_void();
        m.handler(try_start, try_end, None, catch);
        m.build(b)
    });
    assert_eq!(console, vec!["42", "99"]);
}

/// Builds the shared-counter program: `n_threads` workers each increment a
/// static counter `iters` times through a synchronized static method, then
/// bump a "done" counter; main busy-yields until all are done and prints
/// the counter.
fn synchronized_counter_program(b: &mut ProgramBuilder, n_threads: i64, iters: i64) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("Counter", builtin::OBJECT, 0, 2); // statics: 0=count, 1=done
    let mut inc = b.method("inc", 1);
    inc.static_of(cls).synchronized();
    inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
    let inc = inc.build(b);
    let mut fin = b.method("finish", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
    let fin = fin.build(b);
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(iters).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    w.push_i(0).invoke(inc);
    w.inc(1, -1).goto(top);
    w.bind(done);
    w.push_i(0).invoke(fin).ret_void();
    let w = w.build(b);
    let mut m = b.method("main", 1);
    // Initialize statics.
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..n_threads {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait_loop = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(n_threads).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait_loop);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(print, 1).ret_void();
    m.build(b)
}

#[test]
fn synchronized_counter_is_exact_across_seeds() {
    for seed in [1, 2, 3, 99] {
        let (report, console, _) =
            run_seeded(|b| synchronized_counter_program(b, 4, 250), seed, |_| {});
        assert_eq!(console, vec!["1000"], "seed {seed}");
        assert!(report.counters.monitor_acquires >= 1004, "seed {seed}");
        assert_eq!(report.counters.spawns, 4);
    }
}

#[test]
fn different_seeds_produce_different_interleavings() {
    // The *final* answer is identical (the program is race-free), but the
    // context-switch pattern differs across seeds — that is the injected
    // non-determinism replication must mask.
    let (r1, _, _) = run_seeded(|b| synchronized_counter_program(b, 4, 250), 1, |_| {});
    let (r2, _, _) = run_seeded(|b| synchronized_counter_program(b, 4, 250), 2, |_| {});
    assert_ne!(
        (r1.counters.context_switches, r1.counters.instructions),
        (r2.counters.context_switches, r2.counters.instructions),
        "expected distinct interleavings for different seeds"
    );
}

#[test]
fn same_seed_is_fully_deterministic() {
    let (r1, c1, _) = run_seeded(|b| synchronized_counter_program(b, 4, 100), 5, |_| {});
    let (r2, c2, _) = run_seeded(|b| synchronized_counter_program(b, 4, 100), 5, |_| {});
    assert_eq!(c1, c2);
    assert_eq!(r1.counters, r2.counters);
    assert_eq!(r1.acct.total(), r2.acct.total());
}

/// A racy (R4A-violating) counter: increments without synchronization.
fn racy_counter_program(b: &mut ProgramBuilder, n_threads: i64, iters: i64) -> MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("Racy", builtin::OBJECT, 0, 2);
    let fin = {
        let mut fin = b.method("finish", 1);
        fin.static_of(cls).synchronized();
        fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
        fin.build(b)
    };
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(iters).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    // Unprotected read-modify-write of the shared static.
    w.get_static(cls, 0).push_i(1).add().put_static(cls, 0);
    w.inc(1, -1).goto(top);
    w.bind(done);
    w.push_i(0).invoke(fin).ret_void();
    let w = w.build(b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..n_threads {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait_loop = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(n_threads).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait_loop);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(print, 1).ret_void();
    m.build(b)
}

#[test]
fn racy_counter_can_lose_updates() {
    // With small quanta, preemption lands between the read and the write,
    // and some increments are lost for at least one seed.
    let mut lost_somewhere = false;
    for seed in 0..10u64 {
        let (_, console, _) = run_seeded(
            |b| racy_counter_program(b, 4, 200),
            seed,
            |cfg| {
                cfg.quantum = 13;
                cfg.quantum_jitter = 11;
            },
        );
        let total: i64 = console[0].parse().unwrap();
        assert!(total <= 800);
        if total < 800 {
            lost_somewhere = true;
        }
    }
    assert!(lost_somewhere, "expected at least one seed to exhibit the race");
}

#[test]
fn explicit_monitor_enter_exit_excludes() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let spawn = b.import_native("sys.spawn", 2, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        let cls = b.add_class("M", builtin::OBJECT, 0, 2);
        let mut w = b.method("worker", 1);
        let done = w.new_label();
        w.push_i(300).store(1);
        let top = w.bind_new_label();
        w.load(1).if_not(done);
        w.class_obj(cls).monitor_enter();
        w.get_static(cls, 0).push_i(1).add().put_static(cls, 0);
        w.class_obj(cls).monitor_exit();
        w.inc(1, -1).goto(top);
        w.bind(done);
        w.class_obj(cls).monitor_enter();
        w.get_static(cls, 1).push_i(1).add().put_static(cls, 1);
        w.class_obj(cls).monitor_exit();
        w.ret_void();
        let w = w.build(b);
        let mut m = b.method("main", 1);
        m.push_i(0).put_static(cls, 0);
        m.push_i(0).put_static(cls, 1);
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
        let wait_loop = m.bind_new_label();
        let ready = m.new_label();
        m.get_static(cls, 1).push_i(2).icmp(Cmp::Eq).if_true(ready);
        m.invoke_native(yield_n, 0).goto(wait_loop);
        m.bind(ready);
        m.get_static(cls, 0).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["600"]);
}

#[test]
fn reentrant_synchronized_recursion() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let cls = b.add_class("R", builtin::OBJECT, 0, 0);
        // sync_sum(n): synchronized static, recursive — exercises monitor
        // re-entrancy: returns n + sync_sum(n-1), 0 at 0.
        let mut f = b.method("sync_sum", 1);
        f.static_of(cls).synchronized();
        let fid = f.id();
        let base = f.new_label();
        f.load(0).if_not(base);
        f.load(0).load(0).push_i(1).sub().invoke(fid).add().ret_val();
        f.bind(base).push_i(0).ret_val();
        let fid = f.build(b);
        let mut m = b.method("main", 1);
        m.push_i(10).invoke(fid).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["55"]);
}

#[test]
fn wait_notify_producer_consumer() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let spawn = b.import_native("sys.spawn", 2, false);
        let wait = b.import_native("obj.wait", 1, false);
        let notify_all = b.import_native("obj.notify_all", 1, false);
        let cls = b.add_class("Q", builtin::OBJECT, 0, 2); // 0=value, 1=available
                                                           // Producer: lock, set value, mark available, notify, unlock.
        let mut p = b.method("producer", 1);
        p.class_obj(cls).monitor_enter();
        p.push_i(1234).put_static(cls, 0);
        p.push_i(1).put_static(cls, 1);
        p.class_obj(cls).invoke_native(notify_all, 1);
        p.class_obj(cls).monitor_exit();
        p.ret_void();
        let p = p.build(b);
        // Main (consumer): lock, wait until available, read value, unlock.
        let mut m = b.method("main", 1);
        m.push_method(p).push_i(0).invoke_native(spawn, 2);
        m.class_obj(cls).monitor_enter();
        let check = m.bind_new_label();
        let ready = m.new_label();
        m.get_static(cls, 1).if_true(ready);
        m.class_obj(cls).invoke_native(wait, 1);
        m.goto(check);
        m.bind(ready);
        m.get_static(cls, 0).invoke_native(print, 1);
        m.class_obj(cls).monitor_exit();
        m.ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["1234"]);
}

#[test]
fn wait_without_ownership_raises() {
    let (report, _) = run(|b| {
        let wait = b.import_native("obj.wait", 1, false);
        let mut m = b.method("main", 1);
        m.class_obj(builtin::OBJECT).invoke_native(wait, 1).ret_void();
        m.build(b)
    });
    assert_eq!(report.uncaught.len(), 1);
    assert_eq!(report.uncaught[0].1, ftjvm_vm::class::excode::ILLEGAL_MONITOR);
}

#[test]
fn sleep_advances_simulated_time() {
    let (report, _) = run(|b| {
        let sleep = b.import_native("sys.sleep", 1, false);
        let mut m = b.method("main", 1);
        m.push_i(25).invoke_native(sleep, 1).ret_void();
        m.build(b)
    });
    assert!(report.acct.now() >= SimTime::from_millis(25));
}

#[test]
fn file_io_roundtrip_through_natives() {
    let (_, console, world) = run_seeded(
        |b| {
            let print = b.import_native("sys.print_int", 1, false);
            let open = b.import_native("file.open", 1, true);
            let write = b.import_native("file.write", 3, true);
            let seek = b.import_native("file.seek", 2, false);
            let read = b.import_native("file.read", 3, true);
            let close = b.import_native("file.close", 1, false);
            let name = b.intern("out.dat");
            let payload = b.intern("hello");
            let mut m = b.method("main", 1);
            // fd = open("out.dat")  (local 1)
            m.const_str(name).invoke_native(open, 1).store(1);
            // write(fd, "hello", 5) -> prints 5
            m.load(1).const_str(payload).push_i(5).invoke_native(write, 3).invoke_native(print, 1);
            // seek(fd, 0); read(fd, buf, 5) -> prints 5; print buf[1]
            m.load(1).push_i(0).invoke_native(seek, 2);
            m.push_i(5).new_array().store(2);
            m.load(1).load(2).push_i(5).invoke_native(read, 3).invoke_native(print, 1);
            m.load(2).push_i(1).aload().invoke_native(print, 1);
            m.load(1).invoke_native(close, 1);
            m.ret_void();
            m.build(b)
        },
        3,
        |_| {},
    );
    assert_eq!(console, vec!["5", "5", "101"]); // 'e' == 101
    assert_eq!(world.borrow().file("out.dat").unwrap(), b"hello");
}

#[test]
fn nd_natives_clock_and_rand() {
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let clock = b.import_native("sys.clock", 0, true);
        let rand = b.import_native("sys.rand", 1, true);
        let sleep = b.import_native("sys.sleep", 1, false);
        let mut m = b.method("main", 1);
        m.invoke_native(clock, 0).store(1);
        m.push_i(10).invoke_native(sleep, 1);
        m.invoke_native(clock, 0).load(1).sub();
        // elapsed >= 10ms
        m.push_i(10).icmp(Cmp::Ge).invoke_native(print, 1);
        // rand in [0, 5)
        m.push_i(5).invoke_native(rand, 1).store(2);
        m.load(2)
            .push_i(0)
            .icmp(Cmp::Ge)
            .load(2)
            .push_i(5)
            .icmp(Cmp::Lt)
            .band()
            .invoke_native(print, 1);
        m.ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["1", "1"]);
}

#[test]
fn phased_native_locked_sum() {
    let (report, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let locked_sum = b.import_native("bulk.locked_sum", 2, true);
        let mut m = b.method("main", 1);
        // arr = [0..10); lock = new Object
        m.push_i(10).new_array().store(1);
        m.push_i(0).store(2);
        let fill_done = m.new_label();
        let fill = m.bind_new_label();
        m.load(2).push_i(10).icmp(Cmp::Ge).if_true(fill_done);
        m.load(1).load(2).load(2).astore();
        m.inc(2, 1).goto(fill);
        m.bind(fill_done);
        m.new_obj(builtin::OBJECT).store(3);
        m.load(3).load(1).invoke_native(locked_sum, 2).invoke_native(print, 1);
        m.ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["45"]);
    // The native acquired and released a monitor internally.
    assert!(report.counters.monitor_acquires >= 1);
    assert_eq!(report.counters.monitor_ops % 2, 0);
}

#[test]
fn gc_collects_garbage_and_runs_finalizers() {
    let (report, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let gc = b.import_native("sys.gc", 0, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        let cls = b.add_class("Fin", builtin::OBJECT, 0, 1); // static 0 = finalize count
        let mut fin = b.method("Fin.finalize", 1);
        fin.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
        let fin = fin.build(b);
        b.set_finalizer(cls, fin);
        let mut m = b.method("main", 1);
        m.push_i(0).put_static(cls, 0);
        // Allocate 50 dead finalizable objects.
        m.push_i(50).store(1);
        let done = m.new_label();
        let top = m.bind_new_label();
        m.load(1).if_not(done);
        m.new_obj(cls).pop();
        m.inc(1, -1).goto(top);
        m.bind(done);
        m.invoke_native(gc, 0); // discover + resurrect finalizables
                                // Let the finalizer thread drain.
        for _ in 0..300 {
            m.invoke_native(yield_n, 0);
        }
        m.get_static(cls, 0).invoke_native(print, 1);
        m.ret_void();
        m.build(b)
    });
    assert!(report.counters.gc_runs >= 1);
    assert_eq!(console, vec!["50"]);
}

#[test]
fn async_gc_thread_fires_under_pressure() {
    let (report, console, _) = run_seeded(
        |b| {
            let print = b.import_native("sys.print_int", 1, false);
            let mut m = b.method("main", 1);
            // Allocate 5000 dead arrays.
            m.push_i(5000).store(1);
            let done = m.new_label();
            let top = m.bind_new_label();
            m.load(1).if_not(done);
            m.push_i(4).new_array().pop();
            m.inc(1, -1).goto(top);
            m.bind(done);
            m.push_i(1).invoke_native(print, 1).ret_void();
            m.build(b)
        },
        11,
        |cfg| {
            cfg.gc_threshold = 500;
        },
    );
    assert!(report.counters.gc_runs >= 2, "gc ran {} times", report.counters.gc_runs);
    assert_eq!(console, vec!["1"]);
}

#[test]
fn deadlock_is_detected() {
    let mut b = ProgramBuilder::new();
    let spawn = b.import_native("sys.spawn", 2, false);
    let sleep = b.import_native("sys.sleep", 1, false);
    let a = b.add_class("A", builtin::OBJECT, 0, 0);
    let c = b.add_class("B", builtin::OBJECT, 0, 0);
    // worker: lock B, sleep, lock A.
    let mut w = b.method("worker", 1);
    w.class_obj(c).monitor_enter();
    w.push_i(5).invoke_native(sleep, 1);
    w.class_obj(a).monitor_enter();
    w.class_obj(a).monitor_exit();
    w.class_obj(c).monitor_exit();
    w.ret_void();
    let w = w.build(&mut b);
    // main: lock A, spawn worker, sleep, lock B.
    let mut m = b.method("main", 1);
    m.class_obj(a).monitor_enter();
    m.push_method(w).push_i(0).invoke_native(spawn, 2);
    m.push_i(5).invoke_native(sleep, 1);
    m.class_obj(c).monitor_enter();
    m.class_obj(c).monitor_exit();
    m.class_obj(a).monitor_exit();
    m.ret_void();
    let entry = m.build(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let world = World::shared();
    let env = SimEnv::new("solo", world, SimTime::ZERO, 1);
    let mut vm =
        Vm::new(program, NativeRegistry::with_builtins(), env, VmConfig::default()).unwrap();
    let err = vm.run(&mut NoopCoordinator::new()).unwrap_err();
    assert!(matches!(err, VmError::Deadlock { .. }), "got {err}");
}

#[test]
fn runaway_program_hits_budget() {
    let mut b = ProgramBuilder::new();
    let mut m = b.method("main", 1);
    let top = m.bind_new_label();
    m.goto(top);
    m.ret_void();
    let entry = m.build(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let world = World::shared();
    let env = SimEnv::new("solo", world, SimTime::ZERO, 1);
    let cfg = VmConfig { max_units: 10_000, ..VmConfig::default() };
    let mut vm = Vm::new(program, NativeRegistry::with_builtins(), env, cfg).unwrap();
    let err = vm.run(&mut NoopCoordinator::new()).unwrap_err();
    assert_eq!(err, VmError::InstructionBudget);
}

#[test]
fn spawn_tree_assigns_stable_ids() {
    let (report, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let spawn = b.import_native("sys.spawn", 2, false);
        let yield_n = b.import_native("sys.yield", 0, false);
        let cls = b.add_class("T", builtin::OBJECT, 0, 1); // done count
        let mut leaf = b.method("leaf", 1);
        leaf.class_obj(cls).monitor_enter();
        leaf.get_static(cls, 0).push_i(1).add().put_static(cls, 0);
        leaf.class_obj(cls).monitor_exit();
        leaf.ret_void();
        let leaf = leaf.build(b);
        // mid: spawns two leaves, then counts itself done.
        let mut mid = b.method("mid", 1);
        mid.push_method(leaf).push_i(0).invoke_native(spawn, 2);
        mid.push_method(leaf).push_i(0).invoke_native(spawn, 2);
        mid.class_obj(cls).monitor_enter();
        mid.get_static(cls, 0).push_i(1).add().put_static(cls, 0);
        mid.class_obj(cls).monitor_exit();
        mid.ret_void();
        let mid = mid.build(b);
        let mut m = b.method("main", 1);
        m.push_i(0).put_static(cls, 0);
        m.push_method(mid).push_i(0).invoke_native(spawn, 2);
        m.push_method(mid).push_i(0).invoke_native(spawn, 2);
        // Wait for 2 mids + 4 leaves = 6.
        let wait_loop = m.bind_new_label();
        let ready = m.new_label();
        m.get_static(cls, 0).push_i(6).icmp(Cmp::Eq).if_true(ready);
        m.invoke_native(yield_n, 0).goto(wait_loop);
        m.bind(ready);
        m.get_static(cls, 0).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["6"]);
    assert_eq!(report.counters.spawns, 6);
}

#[test]
fn double_arithmetic() {
    use ftjvm_vm::Insn;
    let (_, console) = run(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        // ((2.5 * 4.0) + 1.5) / 0.5 = 23
        m.push_d(2.5).push_i(4).emit(Insn::I2D).emit(Insn::DMul);
        m.push_d(1.5).emit(Insn::DAdd);
        m.push_d(0.5).emit(Insn::DDiv);
        m.emit(Insn::D2I).invoke_native(print, 1);
        // NaN comparison: NaN != NaN is true, NaN == NaN is false.
        m.push_d(f64::NAN).push_d(f64::NAN).dcmp(Cmp::Ne).invoke_native(print, 1);
        m.push_d(f64::NAN).push_d(f64::NAN).dcmp(Cmp::Eq).invoke_native(print, 1);
        m.ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["23", "1", "0"]);
}
