//! Edge-case execution tests: exception machinery, stack-manipulation
//! instructions, class-filtered handlers, monitor pathologies, arrays,
//! and scheduler corner cases.

use ftjvm_netsim::SimTime;
use ftjvm_vm::class::{builtin, excode};
use ftjvm_vm::env::{SimEnv, World};
use ftjvm_vm::exec::{Vm, VmConfig};
use ftjvm_vm::native::NativeRegistry;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::{Cmp, Insn, MethodId, NoopCoordinator, Program, VmError};
use std::sync::Arc;

fn run_prog(
    build: impl FnOnce(&mut ProgramBuilder) -> MethodId,
) -> (ftjvm_vm::RunReport, Vec<String>) {
    let mut b = ProgramBuilder::new();
    let entry = build(&mut b);
    let program = Arc::new(b.build(entry).expect("verifies"));
    run_built(program)
}

fn run_built(program: Arc<Program>) -> (ftjvm_vm::RunReport, Vec<String>) {
    let world = World::shared();
    let env = SimEnv::new("solo", world.clone(), SimTime::ZERO, 7);
    let mut vm =
        Vm::new(program, NativeRegistry::with_builtins(), env, VmConfig::default()).unwrap();
    let report = vm.run(&mut NoopCoordinator::new()).expect("run succeeds");
    let console = world.borrow().console_texts();
    (report, console)
}

#[test]
fn dup_x1_matches_jvm_semantics() {
    // [v2, v1] -> [v1, v2, v1]
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        m.push_i(2).push_i(1).dup_x1();
        // stack: 1 2 1 — print in pop order
        m.invoke_native(print, 1);
        m.invoke_native(print, 1);
        m.invoke_native(print, 1);
        m.ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["1", "2", "1"]);
}

#[test]
fn swap_and_neg() {
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        m.push_i(3).push_i(8).swap().sub(); // 8 - 3
        m.emit(Insn::Neg).invoke_native(print, 1); // -(8-3) = -5
        m.ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["-5"]);
}

#[test]
fn handlers_filter_by_class_hierarchy() {
    // A custom exception class extending Throwable must NOT be caught by a
    // RuntimeException handler, but must be caught by a Throwable handler.
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let custom = b.add_class("App/Error", builtin::THROWABLE, 0, 0);
        let mut m = b.method("main", 1);
        let try_start = m.new_label();
        let try_end = m.new_label();
        let catch_rte = m.new_label();
        let catch_any = m.new_label();
        let done = m.new_label();
        m.bind(try_start);
        m.new_obj(custom).dup().push_i(77).put_field(builtin::THROWABLE_CODE_SLOT);
        m.throw();
        m.bind(try_end);
        m.goto(done);
        m.bind(catch_rte);
        m.pop().push_i(-1).invoke_native(print, 1).goto(done);
        m.bind(catch_any);
        m.get_field(builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
        m.bind(done).ret_void();
        // RuntimeException handler registered FIRST but must not match.
        m.handler(try_start, try_end, Some(builtin::RUNTIME_EXCEPTION), catch_rte);
        m.handler(try_start, try_end, Some(builtin::THROWABLE), catch_any);
        m.build(b)
    });
    assert_eq!(console, vec!["77"]);
}

#[test]
fn nested_try_rethrow_reaches_outer_handler() {
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        let outer_start = m.new_label();
        let outer_end = m.new_label();
        let inner_start = m.new_label();
        let inner_end = m.new_label();
        let inner_catch = m.new_label();
        let outer_catch = m.new_label();
        let done = m.new_label();
        m.bind(outer_start);
        m.bind(inner_start);
        m.push_i(1).push_i(0).div().pop(); // throws ArithmeticException
        m.bind(inner_end);
        m.goto(done);
        m.bind(inner_catch);
        // Log 1, then rethrow the same object.
        m.push_i(1).invoke_native(print, 1);
        m.throw();
        m.bind(outer_end);
        m.goto(done);
        m.bind(outer_catch);
        m.get_field(builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
        m.bind(done).ret_void();
        m.handler(inner_start, inner_end, None, inner_catch);
        // The outer region must cover the rethrow site (the inner catch).
        m.handler(inner_catch, outer_end, None, outer_catch);
        m.build(b)
    });
    assert_eq!(console, vec!["1".to_string(), excode::ARITHMETIC.to_string()]);
}

#[test]
fn exception_inside_callee_unwinds_to_caller_handler() {
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut thrower = b.method("thrower", 1);
        // Some frames deep: thrower -> inner -> divide by zero.
        let mut inner = b.method("inner", 1);
        inner.load(0).push_i(0).div().ret_val();
        let inner = inner.build(b);
        thrower.load(0).invoke(inner).ret_val();
        let thrower = thrower.build(b);
        let mut m = b.method("main", 1);
        let try_start = m.new_label();
        let try_end = m.new_label();
        let catch = m.new_label();
        let done = m.new_label();
        m.bind(try_start);
        m.push_i(9).invoke(thrower).pop();
        m.bind(try_end);
        m.goto(done);
        m.bind(catch);
        m.get_field(builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
        m.bind(done).ret_void();
        m.handler(try_start, try_end, None, catch);
        m.build(b)
    });
    assert_eq!(console, vec![excode::ARITHMETIC.to_string()]);
}

#[test]
fn array_bounds_and_negative_size_are_catchable() {
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        for (setup, _expect) in [(0, excode::ARRAY_BOUNDS), (1, excode::NEGATIVE_ARRAY_SIZE)] {
            let try_start = m.new_label();
            let try_end = m.new_label();
            let catch = m.new_label();
            let done = m.new_label();
            m.bind(try_start);
            if setup == 0 {
                m.push_i(3).new_array().push_i(5).aload().pop();
            } else {
                m.push_i(-2).new_array().pop();
            }
            m.bind(try_end);
            m.goto(done);
            m.bind(catch);
            m.get_field(builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
            m.bind(done);
            m.handler(try_start, try_end, Some(builtin::RUNTIME_EXCEPTION), catch);
        }
        m.ret_void();
        m.build(b)
    });
    assert_eq!(
        console,
        vec![excode::ARRAY_BOUNDS.to_string(), excode::NEGATIVE_ARRAY_SIZE.to_string()]
    );
}

#[test]
fn monitor_exit_without_enter_is_illegal_state() {
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        let try_start = m.new_label();
        let try_end = m.new_label();
        let catch = m.new_label();
        let done = m.new_label();
        m.bind(try_start);
        m.new_obj(builtin::OBJECT).monitor_exit();
        m.bind(try_end);
        m.goto(done);
        m.bind(catch);
        m.get_field(builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
        m.bind(done).ret_void();
        m.handler(try_start, try_end, None, catch);
        m.build(b)
    });
    assert_eq!(console, vec![excode::ILLEGAL_MONITOR.to_string()]);
}

#[test]
fn notify_wakes_exactly_one_waiter() {
    // Three waiters; two notifies; the third waiter stays parked and the
    // VM reports deadlock when main exits without a third notify? No —
    // main terminates, and waiting threads keep the VM from completing:
    // expect a deadlock error. So instead: notify twice, then notify_all
    // to release the rest, and count wake order.
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let spawn = b.import_native("sys.spawn", 2, false);
        let wait = b.import_native("obj.wait", 1, false);
        let notify = b.import_native("obj.notify", 1, false);
        let sleep = b.import_native("sys.sleep", 1, false);
        let cls = b.add_class("W", builtin::OBJECT, 0, 1);
        // waiter(id): lock; count+=1; wait; print id; unlock.
        let mut w = b.method("waiter", 1);
        w.class_obj(cls).monitor_enter();
        w.get_static(cls, 0).push_i(1).add().put_static(cls, 0);
        w.class_obj(cls).invoke_native(wait, 1);
        w.load(0).invoke_native(print, 1);
        w.class_obj(cls).monitor_exit();
        w.ret_void();
        let w = w.build(b);
        let mut m = b.method("main", 1);
        m.push_i(0).put_static(cls, 0);
        for id in 1..=3 {
            m.push_method(w).push_i(id).invoke_native(spawn, 2);
        }
        // Wait until all three are parked in the wait set.
        let parked = m.new_label();
        let check = m.bind_new_label();
        m.class_obj(cls).monitor_enter();
        m.get_static(cls, 0).push_i(3).icmp(Cmp::Eq).if_true(parked);
        m.class_obj(cls).monitor_exit();
        m.push_i(1).invoke_native(sleep, 1);
        m.goto(check);
        m.bind(parked);
        // Wake one at a time; each notify happens while holding the lock.
        m.class_obj(cls).invoke_native(notify, 1);
        m.class_obj(cls).invoke_native(notify, 1);
        m.class_obj(cls).invoke_native(notify, 1);
        m.class_obj(cls).monitor_exit();
        m.ret_void();
        m.build(b)
    });
    // FIFO wait set: wake order matches park order.
    assert_eq!(console, vec!["1", "2", "3"]);
}

#[test]
fn deep_recursion_fills_and_unwinds_many_frames() {
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let mut f = b.method("count", 1);
        let fid = f.id();
        let base = f.new_label();
        f.load(0).if_not(base);
        f.load(0).push_i(1).sub().invoke(fid).push_i(1).add().ret_val();
        f.bind(base).push_i(0).ret_val();
        let fid = f.build(b);
        let mut m = b.method("main", 1);
        m.push_i(500).invoke(fid).invoke_native(print, 1).ret_void();
        m.build(b)
    });
    assert_eq!(console, vec!["500"]);
}

#[test]
fn heap_capacity_exhaustion_is_fatal_r0() {
    let mut b = ProgramBuilder::new();
    let mut m = b.method("main", 1);
    // Allocate forever, keeping everything alive in an array chain.
    m.push_i(2).new_array().store(1);
    let top = m.bind_new_label();
    m.push_i(2).new_array().store(2);
    m.load(2).push_i(0).load(1).astore(); // new.prev = old
    m.load(2).store(1);
    m.goto(top);
    m.ret_void();
    let entry = m.build(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let world = World::shared();
    let env = SimEnv::new("solo", world, SimTime::ZERO, 1);
    let cfg = VmConfig { heap_capacity: 2_000, ..VmConfig::default() };
    let mut vm = Vm::new(program, NativeRegistry::with_builtins(), env, cfg).unwrap();
    let err = vm.run(&mut NoopCoordinator::new()).unwrap_err();
    assert_eq!(err, VmError::OutOfMemory);
}

#[test]
fn unlinked_native_fails_at_construction() {
    let mut b = ProgramBuilder::new();
    let phantom = b.import_native("no.such.native", 0, false);
    let mut m = b.method("main", 1);
    m.invoke_native(phantom, 0).ret_void();
    let entry = m.build(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let world = World::shared();
    let env = SimEnv::new("solo", world, SimTime::ZERO, 1);
    let err = match Vm::new(program, NativeRegistry::with_builtins(), env, VmConfig::default()) {
        Err(e) => e,
        Ok(_) => panic!("linking must fail"),
    };
    assert_eq!(err, VmError::UnlinkedNative { name: "no.such.native".into() });
}

#[test]
fn native_signature_mismatch_fails_at_construction() {
    let mut b = ProgramBuilder::new();
    let bad = b.import_native("sys.clock", 1, true); // clock takes 0 args
    let mut m = b.method("main", 1);
    m.push_i(0).invoke_native(bad, 1).pop().ret_void();
    let entry = m.build(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let world = World::shared();
    let env = SimEnv::new("solo", world, SimTime::ZERO, 1);
    let err = match Vm::new(program, NativeRegistry::with_builtins(), env, VmConfig::default()) {
        Err(e) => e,
        Ok(_) => panic!("linking must fail"),
    };
    assert!(matches!(err, VmError::NativeSignature { .. }));
}

#[test]
fn virtual_dispatch_on_null_receiver_is_npe() {
    let (report, _) = run_prog(|b| {
        let slot = b.declare_vslot("run", 1, false);
        let cls = b.add_class("C", builtin::OBJECT, 0, 0);
        let mut r = b.method("C.run", 1);
        r.instance_of(cls).ret_void();
        let r = r.build(b);
        b.set_vtable(cls, slot, r);
        let mut m = b.method("main", 1);
        m.push_null().invoke_virtual(slot, 1).ret_void();
        m.build(b)
    });
    assert_eq!(report.uncaught.len(), 1);
    assert_eq!(report.uncaught[0].1, excode::NULL_POINTER);
}

#[test]
fn instruction_counts_are_exact_for_straight_line_code() {
    let (report, _) = run_prog(|b| {
        let mut m = b.method("main", 1);
        m.push_i(1).push_i(2).add().pop(); // 4 instructions
        m.ret_void(); // 1 instruction
        m.build(b)
    });
    assert_eq!(report.counters.instructions, 5);
    assert_eq!(report.counters.branches, 1); // the return
}

#[test]
fn phased_native_abort_releases_held_monitors() {
    // bulk.locked_sum acquires arg0's monitor in phase 0 and aborts in
    // phase 1 if arg1 is not an array; the monitor must be released during
    // abort handling and the exception must be catchable.
    let (_, console) = run_prog(|b| {
        let print = b.import_native("sys.print_int", 1, false);
        let locked_sum = b.import_native("bulk.locked_sum", 2, true);
        let mut m = b.method("main", 1);
        let try_start = m.new_label();
        let try_end = m.new_label();
        let catch = m.new_label();
        let done = m.new_label();
        m.new_obj(builtin::OBJECT).store(1); // the lock
        m.bind(try_start);
        m.load(1).new_obj(builtin::OBJECT).invoke_native(locked_sum, 2).pop();
        m.bind(try_end);
        m.goto(done);
        m.bind(catch);
        m.get_field(builtin::THROWABLE_CODE_SLOT).invoke_native(print, 1);
        // The lock must be free again: re-acquire it.
        m.load(1).monitor_enter();
        m.load(1).monitor_exit();
        m.push_i(1).invoke_native(print, 1);
        m.bind(done).ret_void();
        m.handler(try_start, try_end, None, catch);
        m.build(b)
    });
    assert_eq!(console, vec![(excode::NATIVE_BASE + 92).to_string(), "1".to_string()]);
}
