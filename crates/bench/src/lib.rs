//! Measurement harness regenerating every table and figure of the paper's
//! evaluation (§5): Table 2 (benchmark event profiles), Figure 2
//! (normalized execution times of both techniques, primary and backup),
//! Figure 3 (lock-sync overhead breakdown) and Figure 4 (thread-scheduling
//! overhead breakdown).
//!
//! Each binary in `src/bin/` prints one artifact:
//! `cargo run -p ftjvm-bench --release --bin table2` (likewise `fig2`,
//! `fig3`, `fig4`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ftjvm_core::{FtConfig, FtJvm, LagBudget, ReplicationMode, ReplicationStats};
use ftjvm_netsim::{Category, FaultPlan, SimTime, TimeAccount};
use ftjvm_vm::ExecCounters;
use ftjvm_workloads::Workload;

/// Everything measured for one benchmark: baseline, both techniques'
/// primaries, and both techniques' backup replays.
#[derive(Debug)]
pub struct BenchRow {
    /// Benchmark name.
    pub name: &'static str,
    /// The original benchmark's execution time on the paper's testbed, in
    /// seconds (Figure 2's caption) — printed alongside our simulated
    /// baseline so the ÷1000 scale is visible.
    pub paper_exec_secs: u32,
    /// Baseline (unreplicated) simulated time.
    pub base: SimTime,
    /// Baseline counters.
    pub counters: ExecCounters,
    /// Lock-sync primary account.
    pub lock_primary: TimeAccount,
    /// Lock-sync backup replay account.
    pub lock_backup: TimeAccount,
    /// Lock-sync primary replication stats.
    pub lock_stats: ReplicationStats,
    /// TS primary account.
    pub ts_primary: TimeAccount,
    /// TS backup replay account.
    pub ts_backup: TimeAccount,
    /// TS primary replication stats.
    pub ts_stats: ReplicationStats,
}

impl BenchRow {
    /// Normalized primary time for a mode (Figure 2's y-axis).
    pub fn normalized_primary(&self, mode: ReplicationMode) -> f64 {
        match mode {
            ReplicationMode::LockSync => self.lock_primary.normalized_to(self.base),
            ReplicationMode::ThreadSched => self.ts_primary.normalized_to(self.base),
        }
    }

    /// Normalized backup replay time for a mode.
    pub fn normalized_backup(&self, mode: ReplicationMode) -> f64 {
        match mode {
            ReplicationMode::LockSync => self.lock_backup.normalized_to(self.base),
            ReplicationMode::ThreadSched => self.ts_backup.normalized_to(self.base),
        }
    }
}

/// The standard benchmark configuration: a fixed seed pair and the default
/// calibrated cost model, like the paper's fixed testbed.
pub fn bench_config(mode: ReplicationMode) -> FtConfig {
    let mut cfg = FtConfig { mode, ..FtConfig::default() };
    // The benchmark timeslice models the green-threads library's timer
    // (~5 ms of simulated CPU), matching the paper's rescheduling density;
    // correctness tests use much smaller quanta to stress interleavings.
    cfg.vm.quantum = 40_000;
    cfg.vm.quantum_jitter = 20_000;
    cfg
}

/// Measures one workload under baseline and both techniques (primary and
/// full backup replay).
///
/// # Panics
/// Panics if any run fails — benchmarks run known-good workloads.
pub fn measure(w: &Workload) -> BenchRow {
    let harness = FtJvm::new(w.program.clone(), bench_config(ReplicationMode::LockSync));
    let (base_report, _) = harness.run_unreplicated().expect("baseline");
    assert!(base_report.uncaught.is_empty(), "{}: {:?}", w.name, base_report.uncaught);
    let lock = FtJvm::new(w.program.clone(), bench_config(ReplicationMode::LockSync))
        .run_backup_replay()
        .expect("lock-sync pair");
    let ts = FtJvm::new(w.program.clone(), bench_config(ReplicationMode::ThreadSched))
        .run_backup_replay()
        .expect("ts pair");
    BenchRow {
        name: w.name,
        paper_exec_secs: w.paper_exec_secs,
        base: base_report.acct.total(),
        counters: base_report.counters,
        lock_primary: lock.primary.acct.clone(),
        lock_backup: lock.backup.as_ref().expect("lock backup replayed").acct.clone(),
        lock_stats: lock.primary_stats,
        ts_primary: ts.primary.acct.clone(),
        ts_backup: ts.backup.as_ref().expect("ts backup replayed").acct.clone(),
        ts_stats: ts.primary_stats,
    }
}

/// Measures the whole SPEC suite.
pub fn measure_suite() -> Vec<BenchRow> {
    ftjvm_workloads::spec_suite().iter().map(measure).collect()
}

/// One failover measurement: latency of a mid-run crash under a cold
/// (store-only) backup versus a hot (streaming) standby.
#[derive(Debug)]
pub struct FailoverSample {
    /// Time from the crash to the detector firing.
    pub detection: SimTime,
    /// Replay left to do at promotion: the full log for cold, the
    /// unconsumed suffix for hot.
    pub replay: SimTime,
    /// End-to-end failover latency (detection + replay).
    pub total: SimTime,
}

/// Cold-vs-hot failover latencies of one workload at one crash point.
#[derive(Debug)]
pub struct FailoverRow {
    /// Benchmark name.
    pub name: &'static str,
    /// Crash point used for both runs.
    pub fault: FaultPlan,
    /// Cold (replay-at-failover) measurement.
    pub cold: FailoverSample,
    /// Hot (streaming standby) measurement.
    pub hot: FailoverSample,
}

/// The per-workload mid-run crash points used by the failover table
/// (roughly the middle of each benchmark's execution).
pub fn failover_fault(name: &str) -> FaultPlan {
    match name {
        "compress" => FaultPlan::AfterInstructions(2_000_000),
        "jess" => FaultPlan::AfterInstructions(300_000),
        "db" => FaultPlan::AfterInstructions(800_000),
        "mpegaudio" => FaultPlan::AfterInstructions(1_000_000),
        "mtrt" => FaultPlan::AfterInstructions(500_000),
        "jack" => FaultPlan::AfterInstructions(400_000),
        _ => FaultPlan::AfterInstructions(100_000),
    }
}

/// Measures one workload's failover latency under both lag budgets.
///
/// # Panics
/// Panics if any run fails — benchmarks run known-good workloads.
pub fn measure_failover(w: &Workload, fault: FaultPlan) -> FailoverRow {
    let sample = |lag_budget| {
        let mut cfg = bench_config(ReplicationMode::LockSync);
        cfg.fault = fault;
        cfg.lag_budget = lag_budget;
        let r = FtJvm::new(w.program.clone(), cfg).run_with_failure().expect("fails over");
        assert!(r.crashed, "{}: fault did not fire", w.name);
        FailoverSample {
            detection: r.detection_latency,
            replay: r.recovery_replay_time,
            total: r.failover_latency,
        }
    };
    FailoverRow { name: w.name, fault, cold: sample(LagBudget::Cold), hot: sample(LagBudget::Hot) }
}

/// Measures the failover table over the whole SPEC suite.
pub fn measure_failover_suite() -> Vec<FailoverRow> {
    ftjvm_workloads::spec_suite()
        .iter()
        .map(|w| measure_failover(w, failover_fault(w.name)))
        .collect()
}

/// Renders one stacked-bar breakdown row (Figures 3 and 4): per-category
/// share normalized to the baseline.
pub fn breakdown(
    acct: &TimeAccount,
    base: SimTime,
    bookkeeping: Category,
) -> [(&'static str, f64); 5] {
    let norm = |t: SimTime| {
        if base == SimTime::ZERO {
            0.0
        } else {
            t.as_nanos() as f64 / base.as_nanos() as f64
        }
    };
    [
        ("original", norm(acct.get(Category::Base))),
        ("communication", norm(acct.get(Category::Communication))),
        (
            match bookkeeping {
                Category::LockAcquire => "lock-acquire",
                _ => "rescheduling",
            },
            norm(acct.get(bookkeeping)),
        ),
        ("misc", norm(acct.get(Category::Misc))),
        ("pessimistic", norm(acct.get(Category::Pessimistic))),
    ]
}

/// Draws a unicode bar of `value` scaled so that 1.0 = `unit_width` cells.
pub fn bar(value: f64, unit_width: usize) -> String {
    let cells = (value * unit_width as f64).round().max(0.0) as usize;
    "█".repeat(cells.min(200))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_micro_has_expected_shape() {
        let w = ftjvm_workloads::micro::sync_counter(2, 40);
        let row = measure(&w);
        assert!(row.base > SimTime::ZERO);
        // Replication always costs something.
        assert!(row.normalized_primary(ReplicationMode::LockSync) > 1.0);
        assert!(row.normalized_primary(ReplicationMode::ThreadSched) > 1.0);
        // Lock-sync logged lock records; TS logged at most a few switches.
        assert!(row.lock_stats.lock_acq_records > 80);
        assert!(row.ts_stats.sched_records < row.lock_stats.lock_acq_records);
    }

    #[test]
    fn breakdown_components_sum_to_normalized_total() {
        let w = ftjvm_workloads::micro::file_journal(5);
        let row = measure(&w);
        let parts = breakdown(&row.lock_primary, row.base, Category::LockAcquire);
        let sum: f64 = parts.iter().map(|(_, v)| v).sum();
        let total = row.normalized_primary(ReplicationMode::LockSync);
        assert!((sum - total).abs() < 1e-6, "sum {sum} vs total {total}");
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(1.0, 10).chars().count(), 10);
        assert_eq!(bar(0.0, 10), "");
        assert_eq!(bar(2.5, 10).chars().count(), 25);
    }
}
