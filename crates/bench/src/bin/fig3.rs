//! Regenerates the paper's **Figure 3**: normalized overhead breakdown of
//! the replicated lock acquisition implementation — Original JVM /
//! Communication / Lock Acquire / Misc / Pessimistic.
//!
//! Run: `cargo run -p ftjvm-bench --release --bin fig3`

use ftjvm_bench::{bar, breakdown, measure_suite};
use ftjvm_netsim::Category;

fn main() {
    let rows = measure_suite();
    println!("Figure 3: Normalized overhead, replicated lock acquisition\n");
    println!(
        "{:10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "original", "comm", "lock-acq", "misc", "pessim", "total"
    );
    for r in &rows {
        let parts = breakdown(&r.lock_primary, r.base, Category::LockAcquire);
        let total: f64 = parts.iter().map(|(_, v)| v).sum();
        println!(
            "{:10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            r.name, parts[0].1, parts[1].1, parts[2].1, parts[3].1, parts[4].1, total
        );
    }
    println!();
    for r in &rows {
        let parts = breakdown(&r.lock_primary, r.base, Category::LockAcquire);
        print!("{:10} |", r.name);
        for (label, v) in parts {
            let cells = bar(v, 12);
            if !cells.is_empty() {
                print!("{cells}({})", &label[..1]);
            }
        }
        println!();
    }
    println!("\nlegend: (o)riginal (c)ommunication (l)ock-acquire (m)isc (p)essimistic");
    println!(
        "paper shape: communication dominates; db worst (~375% overhead), mpegaudio best (~5%)"
    );
}
