//! Replica-group artifact: what N-replica groups cost and what a
//! failover chain looks like, measured on the deterministic timeline.
//!
//! Run: `cargo run -p ftjvm-bench --release --bin group`
//!
//! Three measurements:
//!
//! * **overhead** — a failure-free 3-replica group (fan-out over two
//!   links, two epoch-acking standbys) versus the classic pair on the
//!   same journal workload, per technique.
//! * **chain** — a 5-replica group under a seeded 20%-loss adversarial
//!   link surviving three successive primary kills; per-failover
//!   detection latency and suffix-replay time.
//! * **voting** — the same group with `vote_quorum = 3` and a byzantine
//!   primary; time from the armed flip to the vote demotion.

use ftjvm_core::ftjvm::{FtConfig, FtJvm, ReplicationMode};
use ftjvm_core::group::GroupConfig;
use ftjvm_netsim::{FailureDetector, FaultPlan, NetFaultPlan, SimTime};
use ftjvm_workloads::micro;

fn group_cfg(mode: ReplicationMode) -> FtConfig {
    FtConfig {
        mode,
        checkpoint_interval: Some(3),
        detector: FailureDetector::new(SimTime::from_millis(1), 2),
        ..FtConfig::default()
    }
}

fn lossy(seed: u64) -> NetFaultPlan {
    NetFaultPlan {
        seed,
        drop: 0.20,
        duplicate: 0.05,
        corrupt: 0.02,
        reorder: 0.10,
        jitter: SimTime::from_micros(300),
        ..NetFaultPlan::default()
    }
}

fn main() {
    let w = micro::file_journal(300);

    println!("Replica groups: overhead, failover chain, vote demotion\n");
    println!("-- failure-free overhead (3-replica group vs pair) --");
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let pair = FtJvm::new(w.program.clone(), FtConfig { mode, ..FtConfig::default() })
            .run_replicated()
            .expect("pair run");
        let group = FtJvm::new(w.program.clone(), group_cfg(mode))
            .run_group(GroupConfig::default())
            .expect("group run");
        let p = pair.primary.acct.total();
        let g = group.final_report.acct.total();
        println!(
            "  {mode:12} pair {p:>12}   group {g:>12}   {:.2}x",
            g.as_nanos() as f64 / p.as_nanos().max(1) as f64
        );
    }

    println!("\n-- 5-replica chain, three primary kills, 20% loss --");
    let mode = ReplicationMode::LockSync;
    let commits = FtJvm::new(w.program.clone(), FtConfig { mode, ..FtConfig::default() })
        .run_replicated()
        .expect("probe")
        .primary_stats
        .output_commits;
    let kills = vec![
        FaultPlan::BeforeOutput(commits / 5),
        FaultPlan::BeforeOutput(commits / 2),
        FaultPlan::BeforeOutput(commits * 4 / 5),
    ];
    let cfg = FtConfig { net_fault: lossy(0x5EED_0001), ..group_cfg(mode) };
    let report = FtJvm::new(w.program.clone(), cfg)
        .run_group(GroupConfig { size: 5, kills, ..GroupConfig::default() })
        .expect("chain run");
    assert!(report.completed, "chain must complete");
    for f in &report.failovers {
        println!(
            "  reign {} -> m{}: detection {:>12}   suffix replay {:>12}",
            f.reign, f.promoted, f.detection_latency, f.suffix_replay
        );
    }
    println!("  survivor m{}   total {}", report.survivor, report.final_report.acct.total());

    println!("\n-- byzantine primary vs vote_quorum = 3 --");
    let cfg = FtConfig {
        net_fault: NetFaultPlan { byzantine_at: vec![4], ..NetFaultPlan::default() },
        ..group_cfg(mode)
    };
    let report = FtJvm::new(w.program.clone(), cfg)
        .run_group(GroupConfig { vote_quorum: Some(3), ..GroupConfig::default() })
        .expect("byzantine run");
    assert!(report.completed, "byzantine group must still complete");
    let demotion = report.failovers.first().expect("a demotion failover");
    println!(
        "  flips {}   demoted at {}   honest successor m{}   detection {}",
        report.byzantine_flips(),
        demotion.crash_at,
        demotion.promoted,
        demotion.detection_latency
    );
    println!(
        "  exactly-once: {}",
        if report.check_no_duplicate_outputs().is_ok() { "ok" } else { "VIOLATED" }
    );
}
