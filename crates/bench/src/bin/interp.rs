//! Interpreter-throughput artifact: wall-clock instructions/second of the
//! fused (superinstruction + quickening + inline-cache) engine and the
//! plain pre-decoded block-dispatch engine versus the per-unit `match`
//! baseline (`DispatchEngine::Match` with `block_cap = 1`), plus the
//! per-workload Figure 3 / Figure 4 overhead slices the engine change
//! moves.
//!
//! Run: `cargo run -p ftjvm-bench --release --bin interp`
//!
//! * `--write` refreshes `BENCH_interpreter.json` at the repo root.
//! * `--check` re-measures and exits nonzero if the fused-vs-baseline (or
//!   decoded-vs-baseline) speedup regressed more than 20% against the
//!   committed JSON. The gate is on the *speedup ratios*, which are stable
//!   across machines; absolute instructions/second are printed for
//!   eyeballing but only warned about, because CI runners differ in raw
//!   clock speed.
//! * `--profile-ops` skips the throughput matrix and instead dumps ranked
//!   executed-op single/digram/trigram frequencies per SPEC analog plus
//!   the cross-suite aggregate — the measured provenance of the fusion
//!   table in `crates/vm/src/decoded.rs` (recorded in DESIGN.md §8.6).

use ftjvm_bench::{bench_config, breakdown};
use ftjvm_core::{FtJvm, ReplicationMode};
use ftjvm_netsim::{Category, SimTime};
use ftjvm_vm::coordinator::NoopCoordinator;
use ftjvm_vm::{DispatchEngine, NativeRegistry, OpProfiler, SimEnv, Vm, World};
use ftjvm_workloads::Workload;
use std::time::Instant;

/// One figure's five labelled overhead slices.
type Slices = [(&'static str, f64); 5];

/// One workload's throughput measurement under the three engines.
struct Row {
    name: &'static str,
    fused_ips: f64,
    decoded_ips: f64,
    match1_ips: f64,
    fig3: Slices,
    fig4: Slices,
}

/// Wall-clock instructions/second of one unreplicated run configuration,
/// best of `iters` runs (first run doubles as warmup).
fn instr_per_sec(w: &Workload, engine: DispatchEngine, block_cap: u32, iters: u32) -> f64 {
    let mut cfg = bench_config(ReplicationMode::ThreadSched);
    cfg.vm.engine = engine;
    cfg.vm.block_cap = block_cap;
    let harness = FtJvm::new(w.program.clone(), cfg);
    let mut best = 0.0f64;
    for _ in 0..iters {
        let start = Instant::now();
        let (report, _) = harness.run_unreplicated().expect("benchmark workload runs");
        let secs = start.elapsed().as_secs_f64().max(1e-9);
        best = best.max(report.counters.instructions as f64 / secs);
    }
    best
}

/// Primary-side overhead slices (the Figure 3 / Figure 4 stacked bars)
/// under the current (fused) engine.
fn slices(w: &Workload) -> (Slices, Slices) {
    let base = {
        let harness = FtJvm::new(w.program.clone(), bench_config(ReplicationMode::LockSync));
        let (report, _) = harness.run_unreplicated().expect("baseline runs");
        report.acct.total()
    };
    let primary_acct = |mode| {
        let harness = FtJvm::new(w.program.clone(), bench_config(mode));
        let world = ftjvm_vm::World::shared();
        let (report, _, _, _) = harness
            .runtime()
            .run_primary_to_log(&world, ftjvm_netsim::FaultPlan::None)
            .expect("primary runs");
        report.acct
    };
    let fig3 = breakdown(&primary_acct(ReplicationMode::LockSync), base, Category::LockAcquire);
    let fig4 = breakdown(&primary_acct(ReplicationMode::ThreadSched), base, Category::Resched);
    (fig3, fig4)
}

fn measure(iters: u32) -> Vec<Row> {
    ftjvm_workloads::spec_suite()
        .iter()
        .map(|w| {
            let fused_ips = instr_per_sec(w, DispatchEngine::Fused, 0, iters);
            let decoded_ips = instr_per_sec(w, DispatchEngine::Decoded, 0, iters);
            let match1_ips = instr_per_sec(w, DispatchEngine::Match, 1, iters);
            let (fig3, fig4) = slices(w);
            Row { name: w.name, fused_ips, decoded_ips, match1_ips, fig3, fig4 }
        })
        .collect()
}

fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in vals {
        log_sum += v.max(1e-9).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / f64::from(n)).exp()
    }
}

fn slice_json(parts: &Slices) -> String {
    let fields: Vec<String> =
        parts.iter().map(|(label, v)| format!("\"{}\": {v:.4}", label.replace('-', "_"))).collect();
    format!("{{ {} }}", fields.join(", "))
}

fn render_json(rows: &[Row]) -> String {
    let fus_geo = geomean(rows.iter().map(|r| r.fused_ips));
    let dec_geo = geomean(rows.iter().map(|r| r.decoded_ips));
    let mat_geo = geomean(rows.iter().map(|r| r.match1_ips));
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 2,\n");
    out.push_str("  \"geomean_instr_per_sec\": {\n");
    out.push_str(&format!("    \"fused\": {fus_geo:.0},\n"));
    out.push_str(&format!("    \"decoded\": {dec_geo:.0},\n"));
    out.push_str(&format!("    \"match_cap1\": {mat_geo:.0},\n"));
    out.push_str(&format!("    \"fused_speedup\": {:.3},\n", fus_geo / mat_geo));
    out.push_str(&format!("    \"fusion_gain\": {:.3},\n", fus_geo / dec_geo));
    out.push_str(&format!("    \"speedup\": {:.3}\n  }},\n", dec_geo / mat_geo));
    out.push_str("  \"workloads\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!(
            "      \"instr_per_sec\": {{ \"fused\": {:.0}, \"decoded\": {:.0}, \
             \"match_cap1\": {:.0}, \"fused_speedup\": {:.3}, \"fusion_gain\": {:.3}, \
             \"speedup\": {:.3} }},\n",
            r.fused_ips,
            r.decoded_ips,
            r.match1_ips,
            r.fused_ips / r.match1_ips,
            r.fused_ips / r.decoded_ips,
            r.decoded_ips / r.match1_ips
        ));
        out.push_str(&format!("      \"fig3_lock_primary\": {},\n", slice_json(&r.fig3)));
        out.push_str(&format!("      \"fig4_ts_primary\": {}\n", slice_json(&r.fig4)));
        out.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"<key>": <f64>` out of the committed JSON's
/// `geomean_instr_per_sec` object without a JSON dependency.
fn committed_geomean_field(json: &str, key: &str) -> Option<f64> {
    let obj = json.split("\"geomean_instr_per_sec\"").nth(1)?;
    let after = obj.split(&format!("\"{key}\"")).nth(1)?;
    let num: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn json_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_interpreter.json")
}

/// `--profile-ops`: executed-op frequency census across the SPEC suite
/// under the plain decoded engine (no fusion — the point is to measure
/// the raw digram/trigram stream fusion would act on). With `--fused`,
/// profiles the fused stream instead: shows how much of the dynamic mix
/// the superinstructions absorbed.
fn profile_ops(fused: bool) {
    let mut agg = OpProfiler::new();
    for w in ftjvm_workloads::spec_suite() {
        let mut cfg = bench_config(ReplicationMode::ThreadSched).vm;
        cfg.engine = if fused { DispatchEngine::Fused } else { DispatchEngine::Decoded };
        cfg.profile_ops = true;
        let world = World::shared();
        let env = SimEnv::new("prof", world.clone(), SimTime::ZERO, 7);
        let mut vm = Vm::new(w.program.clone(), NativeRegistry::with_builtins(), env, cfg)
            .expect("workload builds");
        vm.run(&mut NoopCoordinator::new()).expect("workload runs");
        let p = vm.core().profile.as_ref().expect("profiler was enabled");
        println!("== {} ==\n{}", w.name, p.report(12));
        agg.merge(p);
    }
    println!("== aggregate (all six SPEC analogs) ==\n{}", agg.report(20));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--profile-ops") {
        profile_ops(args.iter().any(|a| a == "--fused"));
        return;
    }
    let write = args.iter().any(|a| a == "--write");
    let check = args.iter().any(|a| a == "--check");
    let iters = if check { 3 } else { 2 };

    let rows = measure(iters);
    let fus_geo = geomean(rows.iter().map(|r| r.fused_ips));
    let dec_geo = geomean(rows.iter().map(|r| r.decoded_ips));
    let mat_geo = geomean(rows.iter().map(|r| r.match1_ips));
    let fused_speedup = fus_geo / mat_geo;
    let speedup = dec_geo / mat_geo;

    println!("Interpreter throughput: fused / decoded block dispatch vs per-unit match (cap=1)\n");
    println!(
        "{:10} {:>15} {:>15} {:>15} {:>7} {:>9}",
        "benchmark", "fused i/s", "decoded i/s", "match1 i/s", "fgain", "fspeedup"
    );
    for r in &rows {
        println!(
            "{:10} {:>15.0} {:>15.0} {:>15.0} {:>6.2}x {:>8.2}x",
            r.name,
            r.fused_ips,
            r.decoded_ips,
            r.match1_ips,
            r.fused_ips / r.decoded_ips,
            r.fused_ips / r.match1_ips
        );
    }
    println!(
        "{:10} {:>15.0} {:>15.0} {:>15.0} {:>6.2}x {:>8.2}x  (geomean)",
        "geomean",
        fus_geo,
        dec_geo,
        mat_geo,
        fus_geo / dec_geo,
        fused_speedup
    );

    if write {
        let path = json_path();
        std::fs::write(&path, render_json(&rows)).expect("write BENCH_interpreter.json");
        println!("\nwrote {}", path.display());
    }
    if check {
        let path = json_path();
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("--check needs {}: {e}", path.display()));
        let mut failed = false;
        for (key, measured) in [("fused_speedup", fused_speedup), ("speedup", speedup)] {
            let Some(want) = committed_geomean_field(&committed, key) else {
                // Pre-fusion schema has no fused entry; gate on what exists.
                continue;
            };
            println!("\ncommitted geomean {key} {want:.2}x, measured {measured:.2}x");
            if measured < want * 0.8 {
                eprintln!("FAIL: {key} regressed more than 20% vs committed baseline");
                failed = true;
            } else if measured < want {
                println!("note: below committed baseline but within the 20% tolerance");
            }
        }
        if failed {
            std::process::exit(1);
        }
        println!("OK");
    }
}
