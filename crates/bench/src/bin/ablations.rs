//! Ablations for the design choices DESIGN.md calls out:
//!
//! 1. **Interval compression** (related-work extension): per-acquisition
//!    vs interval-compressed lock logs, per benchmark — reproducing the
//!    paper's observation that mtrt's 700 k acquisitions collapse to ~56
//!    intervals ("four orders of magnitude fewer events").
//! 2. **Flush policy**: log-buffer threshold vs communication overhead vs
//!    the record window lost at a crash.
//! 3. **Warm vs cold backup**: failover latency decomposition.
//! 4. **Timeslice**: quantum length vs schedule records transmitted (TS).
//!
//! Run: `cargo run -p ftjvm-bench --release --bin ablations`

use ftjvm_bench::bench_config;
use ftjvm_core::{FtConfig, FtJvm, LockVariant, ReplicationMode, WireCodec};
use ftjvm_netsim::{Category, FaultPlan};

fn main() {
    interval_compression();
    flush_policy();
    warm_backup();
    timeslice();
    wire_codec();
}

fn interval_compression() {
    println!("== Ablation 1: interval-compressed lock synchronization ==");
    println!(
        "{:10} {:>12} {:>12} {:>8} {:>12} {:>12}",
        "benchmark", "acq records", "intervals", "ratio", "comm (per)", "comm (int)"
    );
    for w in ftjvm_workloads::spec_suite() {
        let per = FtJvm::new(w.program.clone(), bench_config(ReplicationMode::LockSync))
            .run_replicated()
            .expect("per-acquisition runs");
        let mut cfg = bench_config(ReplicationMode::LockSync);
        cfg.lock_variant = LockVariant::Intervals;
        let int = FtJvm::new(w.program.clone(), cfg).run_replicated().expect("intervals run");
        let acq = per.primary_stats.lock_acq_records.max(1);
        let ints = int.primary_stats.lock_interval_records.max(1);
        println!(
            "{:10} {:>12} {:>12} {:>7.0}x {:>12} {:>12}",
            w.name,
            per.primary_stats.lock_acq_records,
            int.primary_stats.lock_interval_records,
            acq as f64 / ints as f64,
            per.primary.acct.get(Category::Communication).to_string(),
            int.primary.acct.get(Category::Communication).to_string(),
        );
    }
    println!("(paper, full scale: mtrt 700258 acquisitions vs 56 intervals)\n");
}

fn flush_policy() {
    println!("== Ablation 2: log-buffer flush threshold (db, lock-sync) ==");
    println!(
        "{:>10} {:>10} {:>14} {:>16}",
        "threshold", "flushes", "comm overhead", "records lost @crash"
    );
    let w = ftjvm_workloads::db::workload();
    for threshold in [0usize, 1 << 10, 1 << 14, 1 << 16] {
        let mut cfg = bench_config(ReplicationMode::LockSync);
        cfg.flush_threshold = threshold;
        let free = FtJvm::new(w.program.clone(), cfg.clone()).run_replicated().expect("runs");
        let base = FtJvm::new(w.program.clone(), cfg.clone())
            .run_unreplicated()
            .expect("base")
            .0
            .acct
            .total();
        let comm = free.primary.acct.get(Category::Communication);
        // Crash mid-run: how many logged records never reached the backup?
        let mut crash_cfg = cfg;
        crash_cfg.fault = FaultPlan::AfterInstructions(1_000_000);
        let crash = FtJvm::new(w.program.clone(), crash_cfg).run_with_failure().expect("crash run");
        let lost =
            crash.primary_stats.messages_logged().saturating_sub(crash.channel.messages_sent);
        println!(
            "{:>10} {:>10} {:>13.0}% {:>16}",
            threshold,
            free.primary_stats.flushes,
            100.0 * comm.as_nanos() as f64 / base.as_nanos() as f64,
            lost
        );
    }
    println!("(smaller buffers lose fewer records at a crash but flush more often)\n");
}

fn warm_backup() {
    println!("== Ablation 3: warm vs cold backup (failover latency) ==");
    println!(
        "{:10} {:>14} {:>14} {:>14} {:>14}",
        "benchmark", "detection", "replay (cold)", "failover cold", "failover warm"
    );
    for w in ftjvm_workloads::spec_suite() {
        // Crash roughly mid-run.
        let (base, _) =
            FtJvm::new(w.program.clone(), FtConfig::default()).run_unreplicated().expect("base");
        let mid = base.counters.instructions / 2;
        let mut cold = bench_config(ReplicationMode::LockSync);
        cold.fault = FaultPlan::AfterInstructions(mid);
        let mut warm = cold.clone();
        warm.warm_backup = true;
        let c = FtJvm::new(w.program.clone(), cold).run_with_failure().expect("cold");
        let h = FtJvm::new(w.program.clone(), warm).run_with_failure().expect("warm");
        println!(
            "{:10} {:>14} {:>14} {:>14} {:>14}",
            w.name,
            c.detection_latency.to_string(),
            c.recovery_replay_time.to_string(),
            c.failover_latency.to_string(),
            h.failover_latency.to_string(),
        );
    }
    println!("(the paper's cold backup pays the replay at failover; a warm one already has)\n");
}

fn timeslice() {
    println!("== Ablation 4: scheduler timeslice vs schedule records (mtrt, TS) ==");
    println!("{:>10} {:>14} {:>14}", "quantum", "sched records", "TS overhead");
    let w = ftjvm_workloads::mtrt::workload();
    for quantum in [2_000u32, 8_000, 40_000, 160_000] {
        let mut cfg = bench_config(ReplicationMode::ThreadSched);
        cfg.vm.quantum = quantum;
        cfg.vm.quantum_jitter = quantum / 2;
        let (base, _) =
            FtJvm::new(w.program.clone(), cfg.clone()).run_unreplicated().expect("base");
        let r = FtJvm::new(w.program.clone(), cfg).run_replicated().expect("runs");
        println!(
            "{:>10} {:>14} {:>13.2}x",
            quantum,
            r.primary_stats.sched_records,
            r.primary.acct.total().as_nanos() as f64 / base.acct.total().as_nanos() as f64
        );
    }
    println!("(longer timeslices transmit fewer records; bookkeeping cost stays)\n");
}

fn wire_codec() {
    println!("== Ablation 5: wire codec (fixed per-record vs batched delta/varint) ==");
    println!(
        "{:10} {:>7} {:>12} {:>12} {:>7} {:>10} {:>10} {:>10} {:>10}",
        "benchmark",
        "codec",
        "bytes",
        "messages",
        "msg x",
        "B/record",
        "comm",
        "comm shr",
        "pessim"
    );
    for w in ftjvm_workloads::spec_suite() {
        let (base, _) = FtJvm::new(w.program.clone(), bench_config(ReplicationMode::LockSync))
            .run_unreplicated()
            .expect("base");
        let base = base.acct.total();
        let mut fixed_msgs = 0u64;
        for codec in [WireCodec::Fixed, WireCodec::Compact] {
            let mut cfg = bench_config(ReplicationMode::LockSync);
            cfg.codec = codec;
            let r = FtJvm::new(w.program.clone(), cfg).run_replicated().expect("runs");
            if codec == WireCodec::Fixed {
                fixed_msgs = r.channel.messages_sent;
            }
            let records = r.primary_stats.messages_logged().max(1);
            println!(
                "{:10} {:>7} {:>12} {:>12} {:>6.0}x {:>10} {:>10} {:>9.1}% {:>10}",
                w.name,
                codec.to_string(),
                r.primary_stats.bytes_logged,
                r.channel.messages_sent,
                fixed_msgs as f64 / r.channel.messages_sent.max(1) as f64,
                r.primary_stats.bytes_logged / records,
                r.primary.acct.get(Category::Communication).to_string(),
                100.0 * r.primary.acct.get(Category::Communication).as_nanos() as f64
                    / base.as_nanos() as f64,
                r.primary.acct.get(Category::Pessimistic).to_string(),
            );
        }
    }
    println!(
        "(one batch frame per flush amortizes the per-message cost; delta/varint\n\
 bodies shrink bytes-on-wire — \"comm shr\" is the Fig 3 communication share)\n"
    );
}
