//! Failover-latency table: cold (replay-at-failover) backup versus hot
//! (streaming) standby for every SPEC analog at a mid-run crash point —
//! the measured counterpart of the paper's "keeping the backup updated
//! would require only minor modifications" remark (§6).
//!
//! Run: `cargo run -p ftjvm-bench --release --bin failover`

use ftjvm_bench::measure_failover_suite;

fn main() {
    let rows = measure_failover_suite();
    println!("Failover latency: cold backup vs hot standby (lock-sync, mid-run crash)\n");
    println!(
        "{:10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "benchmark",
        "cold-detect",
        "cold-replay",
        "cold-total",
        "hot-detect",
        "hot-replay",
        "hot-total",
        "speedup"
    );
    for r in &rows {
        let speedup = if r.hot.total.as_nanos() == 0 {
            f64::INFINITY
        } else {
            r.cold.total.as_nanos() as f64 / r.hot.total.as_nanos() as f64
        };
        println!(
            "{:10} {:>12} {:>12} {:>12} {:>12} {:>12} {:>12} {:>7.2}x",
            r.name,
            r.cold.detection.to_string(),
            r.cold.replay.to_string(),
            r.cold.total.to_string(),
            r.hot.detection.to_string(),
            r.hot.replay.to_string(),
            r.hot.total.to_string(),
            speedup
        );
    }
    println!(
        "\ncold pays detection + full-log replay; the hot standby already consumed\n\
         every arrived frame, so only detection + the unconsumed suffix remains"
    );
}
