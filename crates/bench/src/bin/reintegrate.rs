//! Checkpoint-interval sweep: epoch cadence versus peak retained-log
//! memory (the truncation win) and versus re-integration latency after a
//! backup failure (the recruitment cost) — the measured counterpart of
//! the paper's log-can-be-garbage-collected-at-a-checkpoint remark (§5).
//!
//! Run: `cargo run -p ftjvm-bench --release --bin reintegrate`

use ftjvm_bench::bench_config;
use ftjvm_core::runtime::CheckpointPlan;
use ftjvm_core::ReplicationMode;
use ftjvm_core::{FtConfig, FtJvm, LagBudget};
use ftjvm_netsim::FaultPlan;
use ftjvm_workloads as workloads;

fn main() {
    let w = workloads::db::workload();
    let base = FtConfig { lag_budget: LagBudget::Hot, ..bench_config(ReplicationMode::LockSync) };

    println!(
        "Epoch checkpointing sweep — {} (lock-sync, hot standby)\n\
         left: failure-free pair, retained-suffix/send-window peaks\n\
         right: backup killed mid-run, replacement recruited from the latest snapshot\n",
        w.name
    );
    println!(
        "{:>9} {:>8} {:>12} {:>12} {:>10} {:>12} {:>14} {:>14}",
        "interval",
        "epochs",
        "peak-frames",
        "peak-bytes",
        "sendwin",
        "snap-bytes",
        "reintegrate",
        "degraded-win"
    );

    // u64::MAX: checkpointing armed but the threshold is never reached —
    // the retained suffix grows to the whole log (the unbounded baseline).
    for interval in [u64::MAX, 64, 32, 16, 8, 4, 2, 1] {
        let cfg = FtConfig { checkpoint_interval: Some(interval), ..base.clone() };

        let quiet = FtJvm::new(w.program.clone(), cfg.clone())
            .run_replicated()
            .expect("failure-free checkpointed pair");
        let s = quiet.primary_stats;

        let killed = FtJvm::new(w.program.clone(), cfg)
            .run_checkpointed(CheckpointPlan {
                fault: FaultPlan::None,
                kill_backup_after_units: Some(200_000),
                reintegrate: true,
            })
            .expect("kill + reintegrate run");
        assert!(killed.pair.check_no_duplicate_outputs().is_ok(), "exactly-once violated");
        let reint =
            killed.reintegration_latency().map_or_else(|| "never".into(), |t| t.to_string());
        let degraded = killed.degraded_window().map_or_else(|| "open".into(), |t| t.to_string());

        let label =
            if interval == u64::MAX { "\u{221e}".to_string() } else { interval.to_string() };
        println!(
            "{:>9} {:>8} {:>12} {:>12} {:>10} {:>12} {:>14} {:>14}",
            label,
            s.epochs_cut,
            s.peak_suffix_frames,
            s.peak_suffix_bytes,
            s.peak_send_window,
            s.snapshot_bytes,
            reint,
            degraded
        );
    }

    println!(
        "\nshorter intervals truncate the retained suffix (and the cold store)\n\
         sooner, at the cost of more frequent snapshot serialization; the\n\
         re-integration latency is dominated by failure detection plus the\n\
         snapshot transfer, so it barely moves with the interval"
    );
}
