//! Regenerates the paper's **Figure 4**: normalized overhead breakdown of
//! the replicated thread scheduling implementation — Original JVM /
//! Communication / Rescheduling / Misc / Pessimistic.
//!
//! Run: `cargo run -p ftjvm-bench --release --bin fig4`

use ftjvm_bench::{bar, breakdown, measure_suite};
use ftjvm_netsim::Category;

fn main() {
    let rows = measure_suite();
    println!("Figure 4: Normalized overhead, replicated thread scheduling\n");
    println!(
        "{:10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "benchmark", "original", "comm", "resched", "misc", "pessim", "total"
    );
    for r in &rows {
        let parts = breakdown(&r.ts_primary, r.base, Category::Resched);
        let total: f64 = parts.iter().map(|(_, v)| v).sum();
        println!(
            "{:10} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2}",
            r.name, parts[0].1, parts[1].1, parts[2].1, parts[3].1, parts[4].1, total
        );
    }
    println!();
    for r in &rows {
        let parts = breakdown(&r.ts_primary, r.base, Category::Resched);
        print!("{:10} |", r.name);
        for (label, v) in parts {
            let cells = bar(v, 12);
            if !cells.is_empty() {
                print!("{cells}({})", &label[..1]);
            }
        }
        println!();
    }
    println!("\nlegend: (o)riginal (c)ommunication (r)escheduling (m)isc (p)essimistic");
    println!("paper shape: Misc (progress-tracking bookkeeping) was the dominant cost at the");
    println!("paper's per-instruction cadence (reproduce with `vm.block_cap = 1`); fused");
    println!("block-boundary tracking cuts it to a few percent, leaving jack's communication");
    println!("as the largest remaining overhead");
}
