//! Regenerates the paper's **Figure 2**: execution time of both
//! replication techniques — primary and backup replay — normalized to the
//! unreplicated VM, per benchmark.
//!
//! Run: `cargo run -p ftjvm-bench --release --bin fig2`

use ftjvm_bench::{bar, measure_suite};
use ftjvm_core::ReplicationMode;

fn main() {
    let rows = measure_suite();
    println!("Figure 2: Execution time normalized to the unreplicated VM");
    println!("(TS = replicated thread scheduling, Lock = replicated lock acquisition)\n");
    println!(
        "{:10} {:>12} {:>12} {:>12} {:>12}   baseline (ours sim / paper real)",
        "benchmark", "TS primary", "TS backup", "Lock prim.", "Lock backup"
    );
    for r in &rows {
        println!(
            "{:10} {:>12.2} {:>12.2} {:>12.2} {:>12.2}   ({:.3}s / {}s)",
            r.name,
            r.normalized_primary(ReplicationMode::ThreadSched),
            r.normalized_backup(ReplicationMode::ThreadSched),
            r.normalized_primary(ReplicationMode::LockSync),
            r.normalized_backup(ReplicationMode::LockSync),
            r.base.as_secs_f64(),
            r.paper_exec_secs,
        );
    }
    println!();
    for r in &rows {
        println!(
            "{:10} TS prim  |{}",
            r.name,
            bar(r.normalized_primary(ReplicationMode::ThreadSched), 12)
        );
        println!(
            "{:10} TS bkup  |{}",
            "",
            bar(r.normalized_backup(ReplicationMode::ThreadSched), 12)
        );
        println!(
            "{:10} Lk prim  |{}",
            "",
            bar(r.normalized_primary(ReplicationMode::LockSync), 12)
        );
        println!("{:10} Lk bkup  |{}", "", bar(r.normalized_backup(ReplicationMode::LockSync), 12));
    }
    // Means (the paper's headline numbers: lock-sync ~2.4x, TS ~1.6x).
    let mean = |f: &dyn Fn(&ftjvm_bench::BenchRow) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    let lock_mean = mean(&|r| r.normalized_primary(ReplicationMode::LockSync));
    let ts_mean = mean(&|r| r.normalized_primary(ReplicationMode::ThreadSched));
    println!();
    println!(
        "mean primary overhead: lock-sync {:.0}% (paper: 140%), thread-sched {:.0}% (paper: 60%)",
        (lock_mean - 1.0) * 100.0,
        (ts_mean - 1.0) * 100.0
    );
    let db = rows.iter().find(|r| r.name == "db").expect("db");
    let mpeg = rows.iter().find(|r| r.name == "mpegaudio").expect("mpegaudio");
    let mtrt = rows.iter().find(|r| r.name == "mtrt").expect("mtrt");
    println!("shape checks:");
    println!(
        "  db is lock-sync's worst case: {:.2}x (paper: ~4.75x)",
        db.normalized_primary(ReplicationMode::LockSync)
    );
    println!(
        "  mpegaudio is lock-sync's best case: {:.2}x (paper: ~1.05x)",
        mpeg.normalized_primary(ReplicationMode::LockSync)
    );
    println!(
        "  mtrt: lock-sync {:.2}x vs thread-sched {:.2}x (paper: lock-sync wins)",
        mtrt.normalized_primary(ReplicationMode::LockSync),
        mtrt.normalized_primary(ReplicationMode::ThreadSched)
    );
}
