//! Fleet-scale serving artifact: aggregate SLOs of hundreds of
//! replicated pairs multiplexed on one event-loop timeline, under
//! per-pair fault injection plus a correlated rack partition.
//!
//! Run: `cargo run -p ftjvm-bench --release --bin fleet`
//!
//! Two named scenarios are measured by default:
//!
//! * `full`  — 512 pairs, 8 racks, independent crashes (150‰) and backup
//!   kills (100‰), rack 5 partitioned (every backup in it dies at one
//!   instant), shared trunk, open-loop clients.
//! * `smoke` — the same mix at 64 pairs; fast enough for every CI run.
//!
//! Every scenario is measured across a worker-thread sweep (1, 2, and
//! host parallelism). The simulated results MUST be byte-identical at
//! every thread count — the binary itself hard-fails on any mismatch,
//! independent of `--check` — so only wall-clock may vary. A serial vs
//! parallel promotion suffix-decode measurement rides along.
//!
//! Flags:
//!
//! * `--write` refreshes `BENCH_fleet.json` at the repo root and the
//!   human-readable `docs/results/fleet.txt`.
//! * `--check` re-measures and exits nonzero if correctness counts
//!   (completed / divergent / lost / failovers absorbed / served) differ
//!   from the committed JSON, or commit-latency percentiles regressed
//!   more than 25%, or (on hosts with 4+ cores) scheduling at max
//!   threads failed to cut wall-clock at least 20% below single-thread.
//!   The whole simulation is deterministic in simulated time, so
//!   everything but wall-clock is machine-independent; the latency
//!   tolerance only keeps innocuous cost-model tuning from needing a
//!   lockstep `--write` in the same commit.
//! * `--smoke` measures only the 64-pair scenario (the CI release-job
//!   gate runs the full `--check`; `--smoke --check` is the quick local
//!   variant).
//! * `--pairs <n>` measures one custom-sized scenario instead (printed
//!   only; not written or checked).

use bytes::Bytes;
use ftjvm_core::codec::{
    build_batch_frame, build_epoch_frame, decode_frames_pipelined, seal_frame, RecordDecoder,
    RecordEncoder,
};
use ftjvm_core::fleet::{run_fleet, FleetConfig, FleetReport};
use ftjvm_core::records::{LoggedResult, Record, WireValue};
use ftjvm_vm::VtPath;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    cfg: FleetConfig,
}

fn scenarios(smoke_only: bool) -> Vec<Scenario> {
    let base = FleetConfig { partition_rack: Some(5), ..FleetConfig::default() };
    let mut v = Vec::new();
    if !smoke_only {
        v.push(Scenario { name: "full", cfg: FleetConfig { pairs: 512, ..base.clone() } });
    }
    v.push(Scenario { name: "smoke", cfg: FleetConfig { pairs: 64, ..base } });
    v
}

fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Worker-thread counts every scenario is measured at: serial, a fixed
/// 2-thread point (exercised even on 1-core hosts — determinism must
/// not depend on real parallelism), and host parallelism.
fn thread_sweep() -> Vec<usize> {
    let mut v = vec![1, 2, host_cores()];
    v.sort_unstable();
    v.dedup();
    v
}

struct Row {
    name: String,
    cfg: FleetConfig,
    /// Report of the single-threaded run (identical at every thread
    /// count — enforced below).
    report: FleetReport,
    /// (threads, wall-clock ms) across the sweep.
    wall_ms_by_threads: Vec<(usize, f64)>,
}

/// Everything observable about a run except pool layout and host time.
fn digest(r: &FleetReport) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {:?} {:?}",
        r.completed,
        r.divergent,
        r.lost,
        r.failovers_absorbed,
        r.backups_killed,
        r.degraded_entries,
        r.reintegrated,
        r.served_requests,
        r.total_requests,
        r.backlog_peak,
        r.commit_p50,
        r.commit_p99,
        r.commit_max,
        r.makespan,
        r.shared,
        r.outcomes,
    )
}

fn measure(sc: Scenario) -> Row {
    let mut wall_ms_by_threads = Vec::new();
    let mut reference: Option<(FleetReport, String)> = None;
    for threads in thread_sweep() {
        let cfg = FleetConfig { threads, ..sc.cfg.clone() };
        let start = Instant::now();
        let report = run_fleet(&cfg).expect("fleet scenario runs");
        wall_ms_by_threads.push((threads, start.elapsed().as_secs_f64() * 1e3));
        match &reference {
            None => {
                let d = digest(&report);
                reference = Some((report, d));
            }
            Some((_, want)) => {
                // Hard gate, independent of --check: a thread count that
                // changes any simulated result is a determinism bug.
                assert_eq!(
                    &digest(&report),
                    want,
                    "[{}] results at {threads} threads diverged from single-threaded run",
                    sc.name
                );
            }
        }
    }
    let (report, _) = reference.expect("sweep is non-empty");
    Row { name: sc.name.to_string(), cfg: sc.cfg, report, wall_ms_by_threads }
}

/// Serial vs parallel promotion-path suffix decode: a synthetic sealed
/// suffix (compact batches + heartbeat fixed frames + epoch marks, the
/// mix a promoting standby drains), decoded at 1 thread and at host
/// parallelism. Outputs are asserted identical; only wall-clock is
/// reported.
struct SuffixBench {
    frames: usize,
    records: usize,
    ms_by_threads: Vec<(usize, f64)>,
}

fn synth_suffix() -> Vec<Bytes> {
    let t0 = VtPath::root();
    let mut enc = RecordEncoder::new();
    let mut frames = Vec::new();
    let mut seq = 0u64;
    let seal = |payload: &Bytes, seq: &mut u64| {
        *seq += 1;
        seal_frame(*seq, payload)
    };
    for epoch in 0..40u64 {
        for batch in 0..25u64 {
            let bodies: Vec<Bytes> = (0..32u64)
                .map(|i| {
                    let n = epoch * 1000 + batch * 32 + i;
                    enc.encode_body(&match n % 4 {
                        0 => Record::LockAcq { t: t0.clone(), t_asn: n, l_id: 3, l_asn: n },
                        1 => Record::NativeResult {
                            t: t0.clone(),
                            seq: n,
                            sig_hash: 0x5EED,
                            result: LoggedResult::Ok(Some(WireValue::Int(n as i64))),
                            out_args: Vec::new(),
                        },
                        2 => Record::OutputCommit { t: t0.clone(), seq: n, output_id: n },
                        _ => Record::Heartbeat { now_ns: n * 1_000 },
                    })
                })
                .collect();
            frames.push(seal(&build_batch_frame(&bodies), &mut seq));
        }
        frames.push(seal(&build_epoch_frame(epoch, 25), &mut seq));
    }
    frames
}

fn measure_suffix_decode() -> SuffixBench {
    let frames = synth_suffix();
    let mut ms_by_threads = Vec::new();
    let mut reference: Option<Vec<Vec<Record>>> = None;
    let mut records = 0usize;
    for threads in thread_sweep() {
        // Best of 3: decode is short enough for scheduler noise to bite.
        let mut best = f64::INFINITY;
        let mut last = Vec::new();
        for _ in 0..3 {
            let mut dec = RecordDecoder::new();
            let start = Instant::now();
            last = decode_frames_pipelined(&mut dec, &frames, threads).expect("suffix decodes");
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        records = last.iter().map(Vec::len).sum();
        match &reference {
            None => reference = Some(last),
            Some(want) => assert_eq!(&last, want, "suffix decode diverged at {threads} threads"),
        }
        ms_by_threads.push((threads, best));
    }
    SuffixBench { frames: frames.len(), records, ms_by_threads }
}

fn render_walls(walls: &[(usize, f64)]) -> String {
    walls.iter().map(|(t, ms)| format!("{t}t {ms:.0}ms")).collect::<Vec<_>>().join(", ")
}

fn render_text(rows: &[Row], suffix: &SuffixBench) -> String {
    let mut out = String::new();
    out.push_str("Fleet-scale serving simulation: aggregate SLOs under continuous faults\n");
    out.push_str(&format!(
        "(windowed worker-pool scheduler, shared trunk, open-loop clients, rack 5\n\
         partitioned; measured on a {}-core host — results byte-identical at every\n\
         thread count, wall-clock only varies)\n\n",
        host_cores()
    ));
    for r in rows {
        let rep = &r.report;
        out.push_str(&format!(
            "[{}] {} pairs, {} racks, seed {:#x}\n",
            r.name, rep.pairs, r.cfg.racks, r.cfg.seed
        ));
        out.push_str(&format!(
            "  completed {} / {}   divergent {}   lost (beyond 1-fault model) {}\n",
            rep.completed, rep.pairs, rep.divergent, rep.lost
        ));
        out.push_str(&format!(
            "  failovers absorbed {}   backups killed {}   degraded {}   reintegrated {}\n",
            rep.failovers_absorbed, rep.backups_killed, rep.degraded_entries, rep.reintegrated
        ));
        out.push_str(&format!(
            "  requests {} served / {} issued   backlog peak {}\n",
            rep.served_requests, rep.total_requests, rep.backlog_peak
        ));
        out.push_str(&format!(
            "  output-commit latency p50 {} p99 {} max {}\n",
            rep.commit_p50, rep.commit_p99, rep.commit_max
        ));
        out.push_str(&format!(
            "  makespan {}   failovers/sec {:.2}   peak suffix {} frames   peak pending {}\n",
            rep.makespan, rep.failovers_per_sec, rep.peak_suffix_frames, rep.peak_backup_pending
        ));
        if let Some(s) = &rep.shared {
            out.push_str(&format!(
                "  trunk: {} frames, {} bytes, busy {} ({:.0}% util), queue peak {}\n",
                s.frames,
                s.bytes,
                s.busy,
                100.0 * s.busy.as_nanos() as f64 / rep.makespan.as_nanos().max(1) as f64,
                s.queue_peak
            ));
        }
        out.push_str(&format!("  wall clock: {}\n\n", render_walls(&r.wall_ms_by_threads)));
    }
    out.push_str(&format!(
        "[promotion suffix decode] {} frames / {} records (sealed compact batches)\n  wall clock: {}\n",
        suffix.frames,
        suffix.records,
        render_walls(&suffix.ms_by_threads)
    ));
    out
}

fn render_json(rows: &[Row], suffix: &SuffixBench) -> String {
    let walls_obj = |walls: &[(usize, f64)]| {
        walls.iter().map(|(t, ms)| format!("\"{t}\": {ms:.1}")).collect::<Vec<_>>().join(", ")
    };
    let threads_list = |walls: &[(usize, f64)]| {
        walls.iter().map(|(t, _)| t.to_string()).collect::<Vec<_>>().join(", ")
    };
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 2,\n");
    out.push_str(&format!("  \"host_cores\": {},\n", host_cores()));
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let rep = &r.report;
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"pairs\": {},\n", rep.pairs));
        out.push_str(&format!("      \"racks\": {},\n", r.cfg.racks));
        out.push_str(&format!("      \"completed\": {},\n", rep.completed));
        out.push_str(&format!("      \"divergent\": {},\n", rep.divergent));
        out.push_str(&format!("      \"lost\": {},\n", rep.lost));
        out.push_str(&format!("      \"failovers_absorbed\": {},\n", rep.failovers_absorbed));
        out.push_str(&format!("      \"backups_killed\": {},\n", rep.backups_killed));
        out.push_str(&format!("      \"degraded_entries\": {},\n", rep.degraded_entries));
        out.push_str(&format!("      \"reintegrated\": {},\n", rep.reintegrated));
        out.push_str(&format!("      \"total_requests\": {},\n", rep.total_requests));
        out.push_str(&format!("      \"served_requests\": {},\n", rep.served_requests));
        out.push_str(&format!("      \"backlog_peak\": {},\n", rep.backlog_peak));
        out.push_str(&format!("      \"commit_p50_ns\": {},\n", rep.commit_p50.as_nanos()));
        out.push_str(&format!("      \"commit_p99_ns\": {},\n", rep.commit_p99.as_nanos()));
        out.push_str(&format!("      \"commit_max_ns\": {},\n", rep.commit_max.as_nanos()));
        out.push_str(&format!("      \"makespan_ns\": {},\n", rep.makespan.as_nanos()));
        out.push_str(&format!("      \"failovers_per_sec\": {:.2},\n", rep.failovers_per_sec));
        if let Some(s) = &rep.shared {
            out.push_str(&format!("      \"trunk_busy_ns\": {},\n", s.busy.as_nanos()));
            out.push_str(&format!("      \"trunk_queue_peak_ns\": {},\n", s.queue_peak.as_nanos()));
        }
        let serial = r.wall_ms_by_threads.first().map_or(0.0, |(_, ms)| *ms);
        out.push_str(&format!("      \"wall_ms\": {serial:.0},\n"));
        out.push_str(&format!("      \"threads\": [{}],\n", threads_list(&r.wall_ms_by_threads)));
        out.push_str(&format!(
            "      \"wall_ms_by_threads\": {{ {} }}\n",
            walls_obj(&r.wall_ms_by_threads)
        ));
        out.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");
    out.push_str("  \"suffix_decode\": {\n");
    out.push_str(&format!("    \"frames\": {},\n", suffix.frames));
    out.push_str(&format!("    \"records\": {},\n", suffix.records));
    out.push_str(&format!("    \"ms_by_threads\": {{ {} }}\n", walls_obj(&suffix.ms_by_threads)));
    out.push_str("  }\n}\n");
    out
}

/// Pulls `"<key>": <number>` out of one committed scenario object
/// (scoped by its `"name"` marker) without a JSON dependency.
fn committed_field(json: &str, scenario: &str, key: &str) -> Option<f64> {
    let obj = json.split(&format!("\"name\": \"{scenario}\"")).nth(1)?;
    let obj = obj.split("\"name\":").next()?;
    let after = obj.split(&format!("\"{key}\"")).nth(1)?;
    let num: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn repo_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

fn check(rows: &[Row]) -> bool {
    let path = repo_path("BENCH_fleet.json");
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--check needs {}: {e}", path.display()));
    let mut failed = false;
    for r in rows {
        if committed_field(&committed, &r.name, "pairs").is_none() {
            println!("scenario `{}` not in committed JSON; skipping", r.name);
            continue;
        }
        let rep = &r.report;
        if rep.divergent != 0 {
            eprintln!("FAIL [{}]: {} divergent pairs (must be 0)", r.name, rep.divergent);
            failed = true;
        }
        // Correctness counts are deterministic and machine-independent:
        // any drift is a behavior change and must come with --write.
        let exact: [(&str, u64); 5] = [
            ("completed", u64::from(rep.completed)),
            ("lost", u64::from(rep.lost)),
            ("failovers_absorbed", u64::from(rep.failovers_absorbed)),
            ("served_requests", rep.served_requests),
            ("backlog_peak", rep.backlog_peak),
        ];
        for (key, measured) in exact {
            let Some(want) = committed_field(&committed, &r.name, key) else { continue };
            if (measured as f64 - want).abs() > 0.5 {
                eprintln!("FAIL [{}]: {key} = {measured}, committed {want:.0}", r.name);
                failed = true;
            }
        }
        // Latency percentiles: allow 25% headroom so cost-model tuning
        // elsewhere doesn't demand a lockstep rewrite, but catch real
        // SLO regressions.
        for (key, measured) in [
            ("commit_p50_ns", rep.commit_p50.as_nanos()),
            ("commit_p99_ns", rep.commit_p99.as_nanos()),
        ] {
            let Some(want) = committed_field(&committed, &r.name, key) else { continue };
            let measured = measured as f64;
            println!("[{}] {key}: committed {want:.0}, measured {measured:.0}", r.name);
            if measured > want * 1.25 {
                eprintln!("FAIL [{}]: {key} regressed more than 25%", r.name);
                failed = true;
            }
        }
        // Wall-clock scaling gate, host-local by construction: on a
        // machine with real parallelism, scheduling at max threads must
        // cut at least 20% off the single-threaded wall. Skipped on
        // small hosts where there is nothing to scale onto, and on
        // small scenarios whose wall is dominated by fixed costs.
        if host_cores() >= 4 && rep.pairs >= 128 {
            let serial = r.wall_ms_by_threads.first().map_or(0.0, |(_, ms)| *ms);
            let (max_t, parallel) = r.wall_ms_by_threads.last().copied().unwrap_or((1, serial));
            println!(
                "[{}] scaling: 1t {serial:.0}ms -> {max_t}t {parallel:.0}ms ({:.2}x)",
                r.name,
                serial / parallel.max(0.001)
            );
            if parallel > serial * 0.8 {
                eprintln!(
                    "FAIL [{}]: {max_t}-thread wall {parallel:.0}ms not 20% under 1-thread {serial:.0}ms",
                    r.name
                );
                failed = true;
            }
        } else {
            println!(
                "[{}] scaling gate skipped ({} host cores, {} pairs)",
                r.name,
                host_cores(),
                rep.pairs
            );
        }
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write");
    let do_check = args.iter().any(|a| a == "--check");
    let smoke_only = args.iter().any(|a| a == "--smoke");
    let custom_pairs = args
        .iter()
        .position(|a| a == "--pairs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u32>().ok());

    let rows: Vec<Row> = if let Some(pairs) = custom_pairs {
        let cfg = FleetConfig { pairs, partition_rack: Some(5), ..FleetConfig::default() };
        vec![measure(Scenario { name: "custom", cfg })]
    } else {
        scenarios(smoke_only).into_iter().map(measure).collect()
    };

    let suffix = measure_suffix_decode();
    print!("{}", render_text(&rows, &suffix));

    if write && custom_pairs.is_none() {
        let json = repo_path("BENCH_fleet.json");
        std::fs::write(&json, render_json(&rows, &suffix)).expect("write BENCH_fleet.json");
        let txt = repo_path("docs/results/fleet.txt");
        std::fs::create_dir_all(txt.parent().expect("has parent")).expect("mkdir results");
        std::fs::write(&txt, render_text(&rows, &suffix)).expect("write fleet.txt");
        println!("wrote {} and {}", json.display(), txt.display());
    }
    if do_check {
        if check(&rows) {
            std::process::exit(1);
        }
        println!("OK");
    }
}
