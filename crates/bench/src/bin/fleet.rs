//! Fleet-scale serving artifact: aggregate SLOs of hundreds of
//! replicated pairs multiplexed on one event-loop timeline, under
//! per-pair fault injection plus a correlated rack partition.
//!
//! Run: `cargo run -p ftjvm-bench --release --bin fleet`
//!
//! Two named scenarios are measured by default:
//!
//! * `full`  — 512 pairs, 8 racks, independent crashes (150‰) and backup
//!   kills (100‰), rack 5 partitioned (every backup in it dies at one
//!   instant), shared trunk, open-loop clients.
//! * `smoke` — the same mix at 64 pairs; fast enough for every CI run.
//!
//! Flags:
//!
//! * `--write` refreshes `BENCH_fleet.json` at the repo root and the
//!   human-readable `docs/results/fleet.txt`.
//! * `--check` re-measures and exits nonzero if correctness counts
//!   (completed / divergent / lost / failovers absorbed / served) differ
//!   from the committed JSON, or commit-latency percentiles regressed
//!   more than 25%. The whole simulation is deterministic in simulated
//!   time, so everything but wall-clock is machine-independent; the
//!   latency tolerance only keeps innocuous cost-model tuning from
//!   needing a lockstep `--write` in the same commit.
//! * `--smoke` measures only the 64-pair scenario (the CI release-job
//!   gate runs `--smoke --check`).
//! * `--pairs <n>` measures one custom-sized scenario instead (printed
//!   only; not written or checked).

use ftjvm_core::fleet::{run_fleet, FleetConfig, FleetReport};
use std::time::Instant;

struct Scenario {
    name: &'static str,
    cfg: FleetConfig,
}

fn scenarios(smoke_only: bool) -> Vec<Scenario> {
    let base = FleetConfig { partition_rack: Some(5), ..FleetConfig::default() };
    let mut v = Vec::new();
    if !smoke_only {
        v.push(Scenario { name: "full", cfg: FleetConfig { pairs: 512, ..base.clone() } });
    }
    v.push(Scenario { name: "smoke", cfg: FleetConfig { pairs: 64, ..base } });
    v
}

struct Row {
    name: String,
    cfg: FleetConfig,
    report: FleetReport,
    wall_ms: f64,
}

fn measure(sc: Scenario) -> Row {
    let start = Instant::now();
    let report = run_fleet(&sc.cfg).expect("fleet scenario runs");
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    Row { name: sc.name.to_string(), cfg: sc.cfg, report, wall_ms }
}

fn render_text(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("Fleet-scale serving simulation: aggregate SLOs under continuous faults\n");
    out.push_str("(event-loop scheduler, shared trunk, open-loop clients, rack 5 partitioned)\n\n");
    for r in rows {
        let rep = &r.report;
        out.push_str(&format!(
            "[{}] {} pairs, {} racks, seed {:#x}\n",
            r.name, rep.pairs, r.cfg.racks, r.cfg.seed
        ));
        out.push_str(&format!(
            "  completed {} / {}   divergent {}   lost (beyond 1-fault model) {}\n",
            rep.completed, rep.pairs, rep.divergent, rep.lost
        ));
        out.push_str(&format!(
            "  failovers absorbed {}   backups killed {}   degraded {}   reintegrated {}\n",
            rep.failovers_absorbed, rep.backups_killed, rep.degraded_entries, rep.reintegrated
        ));
        out.push_str(&format!(
            "  requests {} served / {} issued   backlog peak {}\n",
            rep.served_requests, rep.total_requests, rep.backlog_peak
        ));
        out.push_str(&format!(
            "  output-commit latency p50 {} p99 {} max {}\n",
            rep.commit_p50, rep.commit_p99, rep.commit_max
        ));
        out.push_str(&format!(
            "  makespan {}   failovers/sec {:.2}   peak suffix {} frames   peak pending {}\n",
            rep.makespan, rep.failovers_per_sec, rep.peak_suffix_frames, rep.peak_backup_pending
        ));
        if let Some(s) = &rep.shared {
            out.push_str(&format!(
                "  trunk: {} frames, {} bytes, busy {} ({:.0}% util), queue peak {}\n",
                s.frames,
                s.bytes,
                s.busy,
                100.0 * s.busy.as_nanos() as f64 / rep.makespan.as_nanos().max(1) as f64,
                s.queue_peak
            ));
        }
        out.push_str(&format!("  wall clock {:.0}ms\n\n", r.wall_ms));
    }
    out
}

fn render_json(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": 1,\n  \"scenarios\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let rep = &r.report;
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"pairs\": {},\n", rep.pairs));
        out.push_str(&format!("      \"racks\": {},\n", r.cfg.racks));
        out.push_str(&format!("      \"completed\": {},\n", rep.completed));
        out.push_str(&format!("      \"divergent\": {},\n", rep.divergent));
        out.push_str(&format!("      \"lost\": {},\n", rep.lost));
        out.push_str(&format!("      \"failovers_absorbed\": {},\n", rep.failovers_absorbed));
        out.push_str(&format!("      \"backups_killed\": {},\n", rep.backups_killed));
        out.push_str(&format!("      \"degraded_entries\": {},\n", rep.degraded_entries));
        out.push_str(&format!("      \"reintegrated\": {},\n", rep.reintegrated));
        out.push_str(&format!("      \"total_requests\": {},\n", rep.total_requests));
        out.push_str(&format!("      \"served_requests\": {},\n", rep.served_requests));
        out.push_str(&format!("      \"backlog_peak\": {},\n", rep.backlog_peak));
        out.push_str(&format!("      \"commit_p50_ns\": {},\n", rep.commit_p50.as_nanos()));
        out.push_str(&format!("      \"commit_p99_ns\": {},\n", rep.commit_p99.as_nanos()));
        out.push_str(&format!("      \"commit_max_ns\": {},\n", rep.commit_max.as_nanos()));
        out.push_str(&format!("      \"makespan_ns\": {},\n", rep.makespan.as_nanos()));
        out.push_str(&format!("      \"failovers_per_sec\": {:.2},\n", rep.failovers_per_sec));
        if let Some(s) = &rep.shared {
            out.push_str(&format!("      \"trunk_busy_ns\": {},\n", s.busy.as_nanos()));
            out.push_str(&format!("      \"trunk_queue_peak_ns\": {},\n", s.queue_peak.as_nanos()));
        }
        out.push_str(&format!("      \"wall_ms\": {:.0}\n", r.wall_ms));
        out.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Pulls `"<key>": <number>` out of one committed scenario object
/// (scoped by its `"name"` marker) without a JSON dependency.
fn committed_field(json: &str, scenario: &str, key: &str) -> Option<f64> {
    let obj = json.split(&format!("\"name\": \"{scenario}\"")).nth(1)?;
    let obj = obj.split("\"name\":").next()?;
    let after = obj.split(&format!("\"{key}\"")).nth(1)?;
    let num: String = after
        .chars()
        .skip_while(|c| *c == ':' || c.is_whitespace())
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    num.parse().ok()
}

fn repo_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

fn check(rows: &[Row]) -> bool {
    let path = repo_path("BENCH_fleet.json");
    let committed = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("--check needs {}: {e}", path.display()));
    let mut failed = false;
    for r in rows {
        if committed_field(&committed, &r.name, "pairs").is_none() {
            println!("scenario `{}` not in committed JSON; skipping", r.name);
            continue;
        }
        let rep = &r.report;
        if rep.divergent != 0 {
            eprintln!("FAIL [{}]: {} divergent pairs (must be 0)", r.name, rep.divergent);
            failed = true;
        }
        // Correctness counts are deterministic and machine-independent:
        // any drift is a behavior change and must come with --write.
        let exact: [(&str, u64); 5] = [
            ("completed", u64::from(rep.completed)),
            ("lost", u64::from(rep.lost)),
            ("failovers_absorbed", u64::from(rep.failovers_absorbed)),
            ("served_requests", rep.served_requests),
            ("backlog_peak", rep.backlog_peak),
        ];
        for (key, measured) in exact {
            let Some(want) = committed_field(&committed, &r.name, key) else { continue };
            if (measured as f64 - want).abs() > 0.5 {
                eprintln!("FAIL [{}]: {key} = {measured}, committed {want:.0}", r.name);
                failed = true;
            }
        }
        // Latency percentiles: allow 25% headroom so cost-model tuning
        // elsewhere doesn't demand a lockstep rewrite, but catch real
        // SLO regressions.
        for (key, measured) in [
            ("commit_p50_ns", rep.commit_p50.as_nanos()),
            ("commit_p99_ns", rep.commit_p99.as_nanos()),
        ] {
            let Some(want) = committed_field(&committed, &r.name, key) else { continue };
            let measured = measured as f64;
            println!("[{}] {key}: committed {want:.0}, measured {measured:.0}", r.name);
            if measured > want * 1.25 {
                eprintln!("FAIL [{}]: {key} regressed more than 25%", r.name);
                failed = true;
            }
        }
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write");
    let do_check = args.iter().any(|a| a == "--check");
    let smoke_only = args.iter().any(|a| a == "--smoke");
    let custom_pairs = args
        .iter()
        .position(|a| a == "--pairs")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse::<u32>().ok());

    let rows: Vec<Row> = if let Some(pairs) = custom_pairs {
        let cfg = FleetConfig { pairs, partition_rack: Some(5), ..FleetConfig::default() };
        vec![measure(Scenario { name: "custom", cfg })]
    } else {
        scenarios(smoke_only).into_iter().map(measure).collect()
    };

    print!("{}", render_text(&rows));

    if write && custom_pairs.is_none() {
        let json = repo_path("BENCH_fleet.json");
        std::fs::write(&json, render_json(&rows)).expect("write BENCH_fleet.json");
        let txt = repo_path("docs/results/fleet.txt");
        std::fs::create_dir_all(txt.parent().expect("has parent")).expect("mkdir results");
        std::fs::write(&txt, render_text(&rows)).expect("write fleet.txt");
        println!("wrote {} and {}", json.display(), txt.display());
    }
    if do_check {
        if check(&rows) {
            std::process::exit(1);
        }
        println!("OK");
    }
}
