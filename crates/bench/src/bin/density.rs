//! Prints per-benchmark instruction/branch statistics used to calibrate
//! the thread-scheduling bookkeeping costs (see EXPERIMENTS.md).

use ftjvm_core::{FtConfig, FtJvm};

fn main() {
    for w in ftjvm_workloads::spec_suite() {
        let (r, _) = FtJvm::new(w.program.clone(), FtConfig::default())
            .run_unreplicated()
            .expect("baseline");
        let c = r.counters;
        println!(
            "{:10} insns {:>9} branches {:>9} density {:.3} locks {:>7} natives {:>5} base {:.3}s",
            w.name,
            c.instructions,
            c.branches,
            c.branches as f64 / c.instructions as f64,
            c.monitor_acquires,
            c.native_calls,
            r.acct.total().as_secs_f64()
        );
    }
}
