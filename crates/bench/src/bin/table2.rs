//! Regenerates the paper's **Table 2**: properties of the benchmarks
//! pertinent to the implementation — native methods intercepted, output
//! commits, logged messages, locks acquired, objects locked, largest
//! `l_asn` (lock-sync), and logged messages / reschedules (thread
//! scheduling).
//!
//! Run: `cargo run -p ftjvm-bench --release --bin table2`

use ftjvm_bench::measure_suite;

fn main() {
    let rows = measure_suite();
    let names: Vec<&str> = rows.iter().map(|r| r.name).collect();
    println!("Table 2: Properties of benchmarks pertinent to our implementation");
    println!("(workload analogs at reduced scale; see EXPERIMENTS.md for the scale argument)\n");
    let w = 12;
    print!("{:34}", "Implementation / Event");
    for n in &names {
        print!("{n:>w$}");
    }
    println!();
    println!("{}", "-".repeat(34 + w * names.len()));
    let line = |label: &str, vals: Vec<u64>| {
        print!("{label:34}");
        for v in vals {
            print!("{v:>w$}");
        }
        println!();
    };
    line("Both / NM (intercepted)", rows.iter().map(|r| r.lock_stats.nm_intercepted).collect());
    line("Both / NM Output Commits", rows.iter().map(|r| r.lock_stats.output_commits).collect());
    line("Lock / Logged Messages", rows.iter().map(|r| r.lock_stats.messages_logged()).collect());
    line("Lock / Locks Acquired", rows.iter().map(|r| r.lock_stats.locks_acquired).collect());
    line("Lock / Objects Locked", rows.iter().map(|r| r.counters.objects_locked).collect());
    line("Lock / Largest l_asn", rows.iter().map(|r| r.lock_stats.largest_lasn).collect());
    line("TS / Logged Messages", rows.iter().map(|r| r.ts_stats.messages_logged()).collect());
    line("TS / Reschedules", rows.iter().map(|r| r.ts_stats.sched_records).collect());
    println!();
    println!("Bytes per record family (lock-sync primary, fixed codec):");
    print!("{:34}", "family");
    for n in &names {
        print!("{:>w$}", *n);
    }
    println!();
    for fam in 0..rows[0].lock_stats.family_bytes().len() {
        let label = rows[0].lock_stats.family_bytes()[fam].0;
        print!("{:24}{:>10}", format!("  {label}"), "bytes");
        for r in &rows {
            let (_, _, bytes) = r.lock_stats.family_bytes()[fam];
            print!("{bytes:>w$}");
        }
        println!();
        print!("{:24}{:>10}", "", "B/record");
        for r in &rows {
            let (_, count, bytes) = r.lock_stats.family_bytes()[fam];
            match bytes.checked_div(count) {
                Some(per) => print!("{per:>w$}"),
                None => print!("{:>w$}", "-"),
            }
        }
        println!();
    }
    println!();
    println!("Paper shape checks:");
    let db = rows.iter().find(|r| r.name == "db").expect("db row");
    let jack = rows.iter().find(|r| r.name == "jack").expect("jack row");
    let mtrt = rows.iter().find(|r| r.name == "mtrt").expect("mtrt row");
    let max_locks = rows.iter().map(|r| r.lock_stats.locks_acquired).max().unwrap_or(0);
    let max_objs = rows.iter().map(|r| r.counters.objects_locked).max().unwrap_or(0);
    println!(
        "  db acquires the most locks: {}",
        if db.lock_stats.locks_acquired == max_locks { "yes" } else { "NO" }
    );
    println!(
        "  jack locks the most unique objects: {}",
        if jack.counters.objects_locked == max_objs { "yes" } else { "NO" }
    );
    let only_mtrt_resched =
        rows.iter().all(|r| (r.ts_stats.sched_records > 0) == (r.name == "mtrt"));
    println!(
        "  only mtrt transmits schedule records: {}",
        if only_mtrt_resched { "yes" } else { "NO" }
    );
    println!("  mtrt reschedules: {} (paper: 29163 full-scale)", mtrt.ts_stats.sched_records);
}
