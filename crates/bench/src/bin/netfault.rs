//! Retransmission-overhead sweep: how much extra traffic and pessimistic
//! wait the reliability sublayer pays as the log link degrades, measured
//! against the same workload on the perfect FIFO channel the paper
//! assumes (TCP on a dedicated segment, §3.1).
//!
//! Every row is a failure-free replicated run of the workload over a
//! lossy link: frames drop with the row's probability, 5% are delivered
//! twice, 1% corrupted, 10% jitter-reordered. Output is asserted
//! byte-identical to the clean run before any number is reported.
//!
//! Run: `cargo run -p ftjvm-bench --release --bin netfault`

use ftjvm_core::{FtConfig, FtJvm, NetFaultPlan};
use ftjvm_netsim::{Category, SimTime};
use ftjvm_workloads::{db, jess, Workload};

fn plan(drop_pct: u32) -> NetFaultPlan {
    NetFaultPlan {
        seed: 0xBEEF,
        drop: drop_pct as f64 / 100.0,
        duplicate: 0.05,
        corrupt: 0.01,
        reorder: 0.10,
        jitter: SimTime::from_micros(300),
        ..NetFaultPlan::default()
    }
}

fn sweep(w: &Workload) {
    let clean =
        FtJvm::new(w.program.clone(), FtConfig::default()).run_replicated().expect("clean run");
    let clean_total = clean.primary.acct.total();
    let clean_pess = clean.primary.acct.get(Category::Pessimistic);
    println!("{} — loss sweep (lock-sync, fixed codec, failure-free)", w.name);
    println!(
        "{:>5} {:>8} {:>8} {:>9} {:>7} {:>8} {:>7} {:>12} {:>9}",
        "loss%",
        "frames",
        "retrans",
        "overhead",
        "dups",
        "corrupt",
        "nacks",
        "pessimistic",
        "vs-clean"
    );
    for drop_pct in [0u32, 2, 5, 10, 20] {
        let cfg = FtConfig { net_fault: plan(drop_pct), ..FtConfig::default() };
        let r = FtJvm::new(w.program.clone(), cfg).run_replicated().expect("faulted run");
        assert_eq!(r.console(), clean.console(), "{}: output must not change", w.name);
        r.check_no_duplicate_outputs().expect("exactly-once");
        let c = &r.channel;
        let originals = c.messages_sent.saturating_sub(c.retransmits);
        let pess = r.primary.acct.get(Category::Pessimistic);
        println!(
            "{:>5} {:>8} {:>8} {:>8.1}% {:>7} {:>8} {:>7} {:>12} {:>8.2}x",
            drop_pct,
            c.messages_sent,
            c.retransmits,
            100.0 * c.retransmits as f64 / originals.max(1) as f64,
            c.dup_deliveries,
            c.corrupted_frames,
            c.nacks,
            pess.to_string(),
            r.primary.acct.total().as_nanos() as f64 / clean_total.as_nanos() as f64,
        );
        let _ = clean_pess; // reference column lives in the header note below
    }
    println!("  clean reference: {} pessimistic of {} total\n", clean_pess, clean_total);
}

fn main() {
    println!("Reliability sublayer under injected loss (seed 0xBEEF; +5% dup, +1% corrupt, +10% reorder)\n");
    for w in [jess::workload(), db::workload()] {
        sweep(&w);
    }
}
