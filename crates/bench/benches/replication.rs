//! Microbenchmarks of the replication fast paths (real wall-clock): the
//! lock path under each coordinator, the ND-native interception path, and
//! the output-commit path.

use criterion::{criterion_group, criterion_main, Criterion};
use ftjvm_core::{FtConfig, FtJvm, ReplicationMode};
use std::hint::black_box;

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("replication-paths");
    group.sample_size(15);
    let cases = [
        ("lock-path", ftjvm_workloads::micro::sync_counter(2, 400)),
        ("nd-native-path", ftjvm_workloads::micro::nd_natives(300)),
        ("output-commit-path", ftjvm_workloads::micro::file_journal(40)),
    ];
    for (name, w) in &cases {
        for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
            let harness = FtJvm::new(w.program.clone(), FtConfig { mode, ..FtConfig::default() });
            group.bench_function(format!("{name}/{mode}"), |b| {
                b.iter(|| {
                    let r = harness.run_replicated().expect("runs");
                    black_box(r.primary_stats.messages_logged())
                })
            });
        }
        let base = FtJvm::new(w.program.clone(), FtConfig::default());
        group.bench_function(format!("{name}/baseline"), |b| {
            b.iter(|| {
                let (r, _) = base.run_unreplicated().expect("runs");
                black_box(r.counters.instructions)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_paths);
criterion_main!(benches);
