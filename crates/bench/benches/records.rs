//! Microbenchmark: log-record wire encode/decode throughput — the
//! serialization component of the paper's "Lock Acquire" and "Misc"
//! overheads.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ftjvm_core::records::{LoggedResult, Record, WireValue};
use ftjvm_vm::VtPath;
use std::hint::black_box;

fn bench_records(c: &mut Criterion) {
    let t = VtPath::root().child(3);
    let lock = Record::LockAcq { t: t.clone(), t_asn: 12_345, l_id: 17, l_asn: 99_000 };
    let sched = Record::Sched {
        t: t.clone(),
        br_cnt: 1 << 33,
        method: 42,
        pc_off: 7,
        mon_cnt: 1000,
        l_asn: 12,
        in_native: false,
        next: VtPath::root(),
    };
    let nd = Record::NativeResult {
        t,
        seq: 9,
        sig_hash: 0xDEAD_BEEF,
        result: LoggedResult::Ok(Some(WireValue::Int(123_456_789))),
        out_args: vec![(1, (0..32).map(WireValue::Int).collect())],
    };
    let mut group = c.benchmark_group("records");
    for (name, rec) in [("lock_acq", &lock), ("sched", &sched), ("native_result", &nd)] {
        let bytes = rec.encode().len() as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_function(format!("encode/{name}"), |b| b.iter(|| black_box(rec.encode())));
        let frame = rec.encode();
        group.bench_function(format!("decode/{name}"), |b| {
            b.iter(|| black_box(Record::decode(frame.clone()).expect("decodes")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_records);
criterion_main!(benches);
