//! Microbenchmark: raw interpreter throughput (wall-clock), with and
//! without the per-instruction thread-scheduling bookkeeping — the
//! real-time analog of the paper's "Misc" overhead.

use criterion::{criterion_group, criterion_main, Criterion};
use ftjvm_core::{FtConfig, FtJvm, ReplicationMode};
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(20);
    let w = ftjvm_workloads::micro::arith_loop(20_000);
    let harness = FtJvm::new(w.program.clone(), FtConfig::default());
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let (report, _) = harness.run_unreplicated().expect("runs");
            black_box(report.counters.instructions)
        })
    });
    let ts = FtJvm::new(
        w.program.clone(),
        FtConfig { mode: ReplicationMode::ThreadSched, ..FtConfig::default() },
    );
    group.bench_function("ts-primary", |b| {
        b.iter(|| {
            let report = ts.run_replicated().expect("runs");
            black_box(report.primary.counters.instructions)
        })
    });
    let lock = FtJvm::new(
        w.program.clone(),
        FtConfig { mode: ReplicationMode::LockSync, ..FtConfig::default() },
    );
    group.bench_function("lock-primary", |b| {
        b.iter(|| {
            let report = lock.run_replicated().expect("runs");
            black_box(report.primary.counters.instructions)
        })
    });
    // Ablation: the Eraser-style race detector's wall-clock cost on the
    // same workload (it hooks every shared-memory access).
    let mut detect_cfg = FtConfig::default();
    detect_cfg.vm.race_detect = true;
    let detecting = FtJvm::new(w.program.clone(), detect_cfg);
    group.bench_function("baseline+race-detector", |b| {
        b.iter(|| {
            let (report, _) = detecting.run_unreplicated().expect("runs");
            black_box(report.counters.instructions)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
