//! Microbenchmark: raw interpreter throughput (wall-clock), with and
//! without the per-instruction thread-scheduling bookkeeping — the
//! real-time analog of the paper's "Misc" overhead — plus the dispatch
//! comparison (pre-decoded block engine vs per-unit `match` fetch), a
//! block-size sweep showing where segment fusion stops paying, and the
//! superinstruction ablation (fused vs plain decoded on every SPEC
//! analog).

use criterion::{criterion_group, criterion_main, Criterion};
use ftjvm_core::{FtConfig, FtJvm, ReplicationMode};
use ftjvm_netsim::FaultPlan;
use ftjvm_vm::{DispatchEngine, World};
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(20);
    let w = ftjvm_workloads::micro::arith_loop(20_000);
    let harness = FtJvm::new(w.program.clone(), FtConfig::default());
    group.bench_function("baseline", |b| {
        b.iter(|| {
            let (report, _) = harness.run_unreplicated().expect("runs");
            black_box(report.counters.instructions)
        })
    });
    let ts = FtJvm::new(
        w.program.clone(),
        FtConfig { mode: ReplicationMode::ThreadSched, ..FtConfig::default() },
    );
    group.bench_function("ts-primary", |b| {
        b.iter(|| {
            let report = ts.run_replicated().expect("runs");
            black_box(report.primary.counters.instructions)
        })
    });
    let lock = FtJvm::new(
        w.program.clone(),
        FtConfig { mode: ReplicationMode::LockSync, ..FtConfig::default() },
    );
    group.bench_function("lock-primary", |b| {
        b.iter(|| {
            let report = lock.run_replicated().expect("runs");
            black_box(report.primary.counters.instructions)
        })
    });
    // Ablation: the Eraser-style race detector's wall-clock cost on the
    // same workload (it hooks every shared-memory access).
    let mut detect_cfg = FtConfig::default();
    detect_cfg.vm.race_detect = true;
    let detecting = FtJvm::new(w.program.clone(), detect_cfg);
    group.bench_function("baseline+race-detector", |b| {
        b.iter(|| {
            let (report, _) = detecting.run_unreplicated().expect("runs");
            black_box(report.counters.instructions)
        })
    });
    group.finish();
}

/// Decoded block dispatch vs per-unit `match` fetch on the same workload,
/// both engines crossed with the per-unit consult cadence (`cap1`) that
/// reproduces the pre-segment interpreter. `match-cap1` is the "before"
/// column; `decoded` is the shipped configuration.
fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("dispatch");
    group.sample_size(15);
    let w = ftjvm_workloads::micro::arith_loop(20_000);
    let cases = [
        ("fused", DispatchEngine::Fused, 0u32),
        ("decoded", DispatchEngine::Decoded, 0),
        ("decoded-cap1", DispatchEngine::Decoded, 1),
        ("match", DispatchEngine::Match, 0),
        ("match-cap1", DispatchEngine::Match, 1),
    ];
    for (label, engine, cap) in cases {
        let mut cfg = FtConfig::default();
        cfg.vm.engine = engine;
        cfg.vm.block_cap = cap;
        let harness = FtJvm::new(w.program.clone(), cfg);
        group.bench_function(label, |b| {
            b.iter(|| {
                let (report, _) = harness.run_unreplicated().expect("runs");
                black_box(report.counters.instructions)
            })
        });
    }
    group.finish();
}

/// Block-size sweep under the thread-scheduling primary (where each block
/// boundary costs a progress-tracking consult): throughput from the
/// per-unit cadence (`cap=1`) up to unbounded segments (`cap=0`).
fn bench_block_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("block-cap");
    group.sample_size(15);
    let w = ftjvm_workloads::micro::arith_loop(20_000);
    for cap in [1u32, 4, 16, 64, 256, 0] {
        let mut cfg = FtConfig { mode: ReplicationMode::ThreadSched, ..FtConfig::default() };
        cfg.vm.block_cap = cap;
        let harness = FtJvm::new(w.program.clone(), cfg);
        let label = if cap == 0 {
            "ts-primary/unbounded".to_string()
        } else {
            format!("ts-primary/cap{cap}")
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                let world = World::shared();
                let (report, _, _, _) =
                    harness.runtime().run_primary_to_log(&world, FaultPlan::None).expect("runs");
                black_box(report.counters.instructions)
            })
        });
    }
    group.finish();
}

/// Superinstruction ablation: each SPEC analog under the fused engine
/// (superinstructions + quickening + inline caches) vs the plain decoded
/// engine — the per-workload wall-clock gain the decode-time optimisation
/// tier buys. Unbounded cap for both, so the only variable is the
/// dispatch stream.
fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion");
    group.sample_size(10);
    for w in ftjvm_workloads::spec_suite() {
        for (label, engine) in
            [("fused", DispatchEngine::Fused), ("decoded", DispatchEngine::Decoded)]
        {
            let mut cfg = FtConfig::default();
            cfg.vm.engine = engine;
            let harness = FtJvm::new(w.program.clone(), cfg);
            group.bench_function(format!("{}/{label}", w.name), |b| {
                b.iter(|| {
                    let (report, _) = harness.run_unreplicated().expect("runs");
                    black_box(report.counters.instructions)
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_interpreter, bench_dispatch, bench_block_cap, bench_fusion);
criterion_main!(benches);
