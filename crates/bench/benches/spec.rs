//! Wall-clock benchmarks of the SPEC JVM98 analogs (baseline / lock-sync /
//! thread-scheduling primary) — one group per benchmark, mirroring
//! Figure 2 in real time. The simulated-time figures themselves come from
//! the `table2`/`fig2`/`fig3`/`fig4` binaries.

use criterion::{criterion_group, criterion_main, Criterion};
use ftjvm_bench::bench_config;
use ftjvm_core::{FtJvm, ReplicationMode};
use std::hint::black_box;

fn bench_spec(c: &mut Criterion) {
    for w in ftjvm_workloads::spec_suite() {
        let mut group = c.benchmark_group(format!("spec/{}", w.name));
        group.sample_size(10);
        let base = FtJvm::new(w.program.clone(), bench_config(ReplicationMode::LockSync));
        group.bench_function("baseline", |b| {
            b.iter(|| {
                let (r, _) = base.run_unreplicated().expect("runs");
                black_box(r.counters.instructions)
            })
        });
        for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
            let h = FtJvm::new(w.program.clone(), bench_config(mode));
            group.bench_function(format!("{mode}-primary"), |b| {
                b.iter(|| {
                    let r = h.run_replicated().expect("runs");
                    black_box(r.primary.acct.total().as_nanos())
                })
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_spec);
criterion_main!(benches);
