//! Microbenchmark: backup recovery — full log replay wall-clock for both
//! techniques, plus the crash-to-finish path (detection + replay + live
//! continuation) under both lag budgets (cold replay vs hot streaming
//! standby).

use criterion::{criterion_group, criterion_main, Criterion};
use ftjvm_core::{FtConfig, FtJvm, LagBudget, ReplicationMode};
use ftjvm_netsim::FaultPlan;
use std::hint::black_box;

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(15);
    let w = ftjvm_workloads::micro::sync_counter(3, 300);
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let harness = FtJvm::new(w.program.clone(), FtConfig { mode, ..FtConfig::default() });
        group.bench_function(format!("full-log-replay/{mode}"), |b| {
            b.iter(|| {
                let r = harness.run_backup_replay().expect("replays");
                black_box(r.backup.expect("backup ran").counters.instructions)
            })
        });
        for lag_budget in [LagBudget::Cold, LagBudget::Hot] {
            let crash = FtJvm::new(
                w.program.clone(),
                FtConfig {
                    mode,
                    lag_budget,
                    fault: FaultPlan::AfterInstructions(5_000),
                    ..FtConfig::default()
                },
            );
            group.bench_function(format!("mid-run-failover/{mode}/{lag_budget}"), |b| {
                b.iter(|| {
                    let r = crash.run_with_failure().expect("fails over");
                    black_box(r.console().len())
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
