//! Shared builder utilities for the benchmark analogs.

use ftjvm_vm::bytecode::NativeId;
use ftjvm_vm::program::{MethodBuilder, ProgramBuilder};
use ftjvm_vm::{Cmp, Program};
use std::sync::Arc;

/// The standard-library native imports every workload may use.
#[derive(Debug, Clone, Copy)]
pub struct Std {
    /// `sys.print_int(v)`
    pub print_int: NativeId,
    /// `sys.print(bytes)`
    pub print: NativeId,
    /// `sys.clock() -> ms`
    pub clock: NativeId,
    /// `sys.rand(bound) -> n`
    pub rand: NativeId,
    /// `sys.spawn(method, arg)`
    pub spawn: NativeId,
    /// `sys.yield()`
    pub yield_n: NativeId,
    /// `sys.sleep(ms)`
    pub sleep: NativeId,
    /// `obj.wait(o)`
    pub wait: NativeId,
    /// `obj.notify(o)`
    pub notify: NativeId,
    /// `obj.notify_all(o)`
    pub notify_all: NativeId,
    /// `sys.gc()`
    pub gc: NativeId,
    /// `file.open(name) -> fd`
    pub fopen: NativeId,
    /// `file.read(fd, buf, len) -> n`
    pub fread: NativeId,
    /// `file.write(fd, buf, len) -> n`
    pub fwrite: NativeId,
    /// `file.seek(fd, off)`
    pub fseek: NativeId,
    /// `file.close(fd)`
    pub fclose: NativeId,
    /// `file.size(fd) -> n`
    pub fsize: NativeId,
    /// `bulk.locked_sum(lock, arr) -> sum`
    pub locked_sum: NativeId,
}

impl Std {
    /// Imports the standard natives into `b`.
    pub fn import(b: &mut ProgramBuilder) -> Std {
        Std {
            print_int: b.import_native("sys.print_int", 1, false),
            print: b.import_native("sys.print", 1, false),
            clock: b.import_native("sys.clock", 0, true),
            rand: b.import_native("sys.rand", 1, true),
            spawn: b.import_native("sys.spawn", 2, false),
            yield_n: b.import_native("sys.yield", 0, false),
            sleep: b.import_native("sys.sleep", 1, false),
            wait: b.import_native("obj.wait", 1, false),
            notify: b.import_native("obj.notify", 1, false),
            notify_all: b.import_native("obj.notify_all", 1, false),
            gc: b.import_native("sys.gc", 0, false),
            fopen: b.import_native("file.open", 1, true),
            fread: b.import_native("file.read", 3, true),
            fwrite: b.import_native("file.write", 3, true),
            fseek: b.import_native("file.seek", 2, false),
            fclose: b.import_native("file.close", 1, false),
            fsize: b.import_native("file.size", 1, true),
            locked_sum: b.import_native("bulk.locked_sum", 2, true),
        }
    }
}

/// Emits `for local in start..end { body }` (the loop variable is an int
/// local; `body` must leave the stack balanced).
pub fn count_loop(
    m: &mut MethodBuilder,
    local: u16,
    start: i64,
    end: i64,
    body: impl FnOnce(&mut MethodBuilder),
) {
    let done = m.new_label();
    m.push_i(start).store(local);
    let top = m.bind_new_label();
    m.load(local).push_i(end).icmp(Cmp::Ge).if_true(done);
    body(m);
    m.inc(local, 1).goto(top);
    m.bind(done);
}

/// Emits a calibration spin: a tight countdown loop of `iters` iterations
/// (~4 execution units each) used to give each benchmark analog the same
/// compute-to-event density as its SPEC original (see EXPERIMENTS.md).
pub fn spin(m: &mut MethodBuilder, local: u16, iters: i64) {
    let done = m.new_label();
    m.push_i(iters).store(local);
    let top = m.bind_new_label();
    m.load(local).if_not(done);
    m.inc(local, -1).goto(top);
    m.bind(done);
}

/// A built workload: the verified program plus descriptive metadata.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (`"db"`, `"mtrt"`, …).
    pub name: &'static str,
    /// One-line description of what the analog computes.
    pub description: &'static str,
    /// The verified program (entry takes the scale factor).
    pub program: Arc<Program>,
    /// True if the workload runs more than one application thread.
    pub multithreaded: bool,
    /// The SPEC JVM98 execution time of the original benchmark on the
    /// paper's testbed, in seconds (Figure 2's caption) — used to label
    /// regenerated figures.
    pub paper_exec_secs: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_vm::program::ProgramBuilder;

    #[test]
    fn std_imports_resolve_against_builtin_registry() {
        let mut b = ProgramBuilder::new();
        let std = Std::import(&mut b);
        let mut m = b.method("main", 1);
        m.ret_void();
        let entry = m.build(&mut b);
        let p = b.build(entry).unwrap();
        // Every imported name exists in the builtin registry with a
        // matching signature (checked again at link time; this test makes
        // the failure local to the workloads crate).
        let reg = ftjvm_vm::NativeRegistry::with_builtins();
        for imp in &p.native_imports {
            let decl = reg.lookup(&imp.name).unwrap_or_else(|| panic!("missing {}", imp.name));
            assert_eq!(decl.argc, imp.argc, "{}", imp.name);
            assert_eq!(decl.returns, imp.returns, "{}", imp.name);
        }
        let _ = std;
    }

    #[test]
    fn count_loop_shape() {
        let mut b = ProgramBuilder::new();
        let print = b.import_native("sys.print_int", 1, false);
        let mut m = b.method("main", 1);
        m.push_i(0).store(2);
        count_loop(&mut m, 1, 0, 5, |m| {
            m.load(2).load(1).add().store(2);
        });
        m.load(2).invoke_native(print, 1).ret_void();
        let entry = m.build(&mut b);
        assert!(b.build(entry).is_ok());
    }
}
