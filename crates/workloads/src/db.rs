//! `db` analog — a memory-resident database queried through synchronized
//! methods.
//!
//! SPEC JVM98's `db` performs many small queries against an in-memory
//! database; Table 2 shows it acquiring by far the most locks of the suite
//! (53.5 M) with a strongly skewed distribution (largest `l_asn` 5.3 M ≈
//! 10 % of all acquisitions hit one lock — the database's own monitor).
//! The analog keeps a record table of (key, balance) object pairs behind a
//! `Database` object whose accessor methods are `synchronized`, runs a
//! deterministic query mix (point reads, updates, range scans), and prints
//! aggregate results. Every record object additionally has a synchronized
//! per-record method, giving the long tail of distinct locked objects.

use crate::helpers::{count_loop, spin, Std, Workload};
use ftjvm_vm::class::builtin;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::Cmp;
use std::sync::Arc;

const TABLE: i64 = 128;

/// Builds the workload. Scale 1 runs 16 384 queries over 128 records.
pub fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);

    // Record: fields 0=key, 1=balance. Virtual slot `touch` is a
    // synchronized per-record method (distinct locked objects).
    let record = b.add_class("spec/db/Record", builtin::OBJECT, 2, 0);
    let touch_slot = b.declare_vslot("touch", 2, true);
    let mut touch = b.method("Record.touch", 2);
    touch.instance_of(record).synchronized();
    // balance += delta; return balance
    touch.load(0).load(0).get_field(1).load(1).add().put_field(1);
    touch.load(0).get_field(1).ret_val();
    let touch = touch.build(&mut b);
    b.set_vtable(record, touch_slot, touch);

    // Database: statics 0=records array, 1=query count, 2=aggregate.
    let db = b.add_class("spec/db/Database", builtin::OBJECT, 0, 3);

    // lookup(idx) -> balance : synchronized on the Database class object
    // (the hot lock).
    let mut lookup = b.method("Database.lookup", 1);
    lookup.static_of(db).synchronized();
    lookup.get_static(db, 0).load(0).aload().get_field(1).ret_val();
    let lookup = lookup.build(&mut b);

    // update(idx, delta) -> new balance : synchronized, then touches the
    // record (nested per-record lock).
    let mut update = b.method("Database.update", 2);
    update.static_of(db).synchronized();
    update.get_static(db, 0).load(0).aload().load(1).invoke_virtual(touch_slot, 2).ret_val();
    let update = update.build(&mut b);

    // scan(lo, hi) -> sum of balances in [lo, hi) : one synchronized call
    // per visited record (the query storm).
    let mut scan = b.method("Database.scan", 2);
    {
        let m = &mut scan;
        // locals: 0=lo, 1=hi, 2=i, 3=sum
        m.push_i(0).store(3);
        m.load(0).store(2);
        let done = m.new_label();
        let top = m.bind_new_label();
        m.load(2).load(1).icmp(Cmp::Ge).if_true(done);
        m.load(2).invoke(lookup).load(3).add().store(3);
        m.inc(2, 1).goto(top);
        m.bind(done);
        m.load(3).ret_val();
    }
    let scan = scan.build(&mut b);

    // main(scale)
    let mut m = b.method("main", 1);
    {
        // locals: 0=scale, 1=i, 2=queries, 3=state, 4=key, 5=acc
        // Build the table.
        m.push_i(TABLE).new_array().put_static(db, 0);
        count_loop(&mut m, 1, 0, TABLE, |m| {
            m.get_static(db, 0).load(1);
            m.new_obj(record).dup().load(1).put_field(0); // key
            m.dup().load(1).push_i(100).mul().put_field(1); // balance
            m.astore();
        });
        m.push_i(0).put_static(db, 1);
        m.push_i(0).put_static(db, 2);
        // The real db reads its query stream from a file; ours derives the
        // mix from a deterministic LCG, with periodic ND clock samples
        // (the benchmark's own instrumentation).
        m.load(0).push_i(16384).mul().store(2);
        m.push_i(12345).store(3);
        m.push_i(0).store(5);
        let done = m.new_label();
        m.push_i(0).store(1);
        let top = m.bind_new_label();
        m.load(1).load(2).icmp(Cmp::Ge).if_true(done);
        // state = (state * 48271) % 2^31-1 ; key = state % TABLE
        m.load(3).push_i(48_271).mul().push_i(0x7FFF_FFFF).rem().store(3);
        m.load(3).push_i(TABLE).rem().store(4);
        {
            // Query mix by state % 8: 0 => scan of 20, 1-3 => update,
            // else lookup (scans dominate, giving db its 53 M-lock
            // full-scale signature).
            let do_update = m.new_label();
            let do_lookup = m.new_label();
            let next = m.new_label();
            m.load(3).push_i(8).rem().if_true(do_update);
            // scan(key % (TABLE-20), +20)
            m.load(4).push_i(TABLE - 20).rem().dup().push_i(20).add().invoke(scan);
            m.load(5).add().store(5);
            m.goto(next);
            m.bind(do_update);
            m.load(3).push_i(8).rem().push_i(4).icmp(Cmp::Lt).if_not(do_lookup);
            m.load(4).load(3).push_i(7).rem().push_i(3).sub().invoke(update);
            m.load(5).add().store(5);
            m.goto(next);
            m.bind(do_lookup);
            m.load(4).invoke(lookup).load(5).add().store(5);
            m.bind(next);
        }
        // Per-query result post-processing (hash mixing in the real db).
        spin(&mut m, 6, 18);
        // Every 170 queries, sample the clock (ND) — mirrors db's
        // instrumentation reads.
        {
            let skip = m.new_label();
            m.load(1).push_i(170).rem().if_true(skip);
            m.invoke_native(std.clock, 0).pop();
            m.bind(skip);
        }
        // Every 4096 queries, report the running aggregate (output commit).
        {
            let skip = m.new_label();
            m.load(1).push_i(4096).rem().if_true(skip);
            m.load(5).invoke_native(std.print_int, 1);
            m.bind(skip);
        }
        m.inc(1, 1).goto(top);
        m.bind(done);
        // Outputs: aggregate, a fresh scan of everything, query count.
        m.load(5).invoke_native(std.print_int, 1);
        m.push_i(0).push_i(TABLE).invoke(scan).invoke_native(std.print_int, 1);
        m.load(2).invoke_native(std.print_int, 1);
        m.ret_void();
    }
    let entry = m.build(&mut b);
    Workload {
        name: "db",
        description:
            "memory-resident database with a synchronized query storm (most locks in the suite)",
        program: Arc::new(b.build(entry).expect("db verifies")),
        multithreaded: false,
        paper_exec_secs: 354,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_core::{FtConfig, FtJvm};

    #[test]
    fn db_runs_with_heavy_skewed_locking() {
        let w = workload();
        let (report, world) =
            FtJvm::new(w.program.clone(), FtConfig::default()).run_unreplicated().unwrap();
        assert!(report.uncaught.is_empty(), "{:?}", report.uncaught);
        let console = world.borrow().console_texts();
        assert!(console.len() >= 3);
        assert_eq!(*console.last().unwrap(), "16384");
        // Lock volume dominates everything else (Table 2's signature).
        assert!(
            report.counters.monitor_acquires > 40_000,
            "db must acquire a lot of locks, got {}",
            report.counters.monitor_acquires
        );
        assert!(report.counters.native_calls < 200);
    }

    #[test]
    fn db_is_deterministic_across_seeds() {
        let w = workload();
        let mut texts = Vec::new();
        for seed in [1u64, 99] {
            let cfg = FtConfig { primary_seed: seed, ..FtConfig::default() };
            let (_, world) = FtJvm::new(w.program.clone(), cfg).run_unreplicated().unwrap();
            let t = world.borrow().console_texts();
            texts.push(t);
        }
        assert_eq!(texts[0], texts[1], "single-threaded db output is seed-independent");
    }
}
