//! Micro workloads used by tests, examples and ablation benches.

use crate::helpers::{Std, Workload};
use ftjvm_vm::class::builtin;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::Cmp;
use std::sync::Arc;

/// `n` workers incrementing a shared counter through a synchronized
/// method `iters` times each; prints the exact total.
pub fn sync_counter(n_threads: i64, iters: i64) -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);
    let cls = b.add_class("micro/Counter", builtin::OBJECT, 0, 2);
    let mut inc = b.method("inc", 1);
    inc.static_of(cls).synchronized();
    inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
    let inc = inc.build(&mut b);
    let mut fin = b.method("finish", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
    let fin = fin.build(&mut b);
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(iters).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    w.push_i(0).invoke(inc);
    w.inc(1, -1).goto(top);
    w.bind(done).push_i(0).invoke(fin).ret_void();
    let w = w.build(&mut b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..n_threads {
        m.push_method(w).push_i(0).invoke_native(std.spawn, 2);
    }
    let wait_loop = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(n_threads).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(std.yield_n, 0).goto(wait_loop);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(std.print_int, 1).ret_void();
    let entry = m.build(&mut b);
    Workload {
        name: "sync_counter",
        description: "synchronized shared counter (lock-path microbenchmark)",
        program: Arc::new(b.build(entry).expect("verifies")),
        multithreaded: n_threads > 1,
        paper_exec_secs: 0,
    }
}

/// A tight arithmetic loop with no locks and no natives except the final
/// print — the interpreter-throughput microbenchmark.
pub fn arith_loop(iters: i64) -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);
    let mut m = b.method("main", 1);
    let done = m.new_label();
    m.push_i(iters).store(1);
    m.push_i(1).store(2);
    let top = m.bind_new_label();
    m.load(1).if_not(done);
    m.load(2).push_i(31).mul().push_i(17).add().push_i(0xFFFF).band().store(2);
    m.inc(1, -1).goto(top);
    m.bind(done);
    m.load(2).invoke_native(std.print_int, 1).ret_void();
    let entry = m.build(&mut b);
    Workload {
        name: "arith_loop",
        description: "pure interpreter throughput (no locks, no I/O)",
        program: Arc::new(b.build(entry).expect("verifies")),
        multithreaded: false,
        paper_exec_secs: 0,
    }
}

/// Writes `n` journal entries to a file, each under its own output commit —
/// the output-commit/pessimism microbenchmark and the SE-handler demo.
pub fn file_journal(n: i64) -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);
    let name = b.intern("journal.log");
    let entry_text = b.intern("journal-entry\n");
    let mut m = b.method("main", 1);
    m.const_str(name).invoke_native(std.fopen, 1).store(1);
    let done = m.new_label();
    m.push_i(n).store(2);
    let top = m.bind_new_label();
    m.load(2).if_not(done);
    m.load(1).const_str(entry_text).push_i(14).invoke_native(std.fwrite, 3).pop();
    m.inc(2, -1).goto(top);
    m.bind(done);
    m.load(1).invoke_native(std.fsize, 1).invoke_native(std.print_int, 1);
    m.load(1).invoke_native(std.fclose, 1);
    m.ret_void();
    let entry = m.build(&mut b);
    Workload {
        name: "file_journal",
        description: "per-entry committed file appends (output-commit microbenchmark)",
        program: Arc::new(b.build(entry).expect("verifies")),
        multithreaded: false,
        paper_exec_secs: 0,
    }
}

/// Reads the clock and RNG in a loop — the ND-native-interception
/// microbenchmark.
pub fn nd_natives(n: i64) -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);
    let mut m = b.method("main", 1);
    let done = m.new_label();
    m.push_i(n).store(1);
    m.push_i(0).store(2);
    let top = m.bind_new_label();
    m.load(1).if_not(done);
    m.invoke_native(std.clock, 0).push_i(3).rem();
    m.push_i(10).invoke_native(std.rand, 1).add();
    m.load(2).add().store(2);
    m.inc(1, -1).goto(top);
    m.bind(done);
    m.load(2).push_i(0).icmp(Cmp::Ge).invoke_native(std.print_int, 1).ret_void();
    let entry = m.build(&mut b);
    Workload {
        name: "nd_natives",
        description: "clock/RNG interception loop (ND-native microbenchmark)",
        program: Arc::new(b.build(entry).expect("verifies")),
        multithreaded: false,
        paper_exec_secs: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_core::{FtConfig, FtJvm};

    #[test]
    fn micro_workloads_run() {
        for (w, expect) in [
            (sync_counter(3, 50), Some("150".to_string())),
            (arith_loop(500), None),
            (file_journal(6), Some((6 * 14).to_string())),
            (nd_natives(20), Some("1".to_string())),
        ] {
            let (report, world) =
                FtJvm::new(w.program.clone(), FtConfig::default()).run_unreplicated().unwrap();
            assert!(report.uncaught.is_empty(), "{}: {:?}", w.name, report.uncaught);
            let console = world.borrow().console_texts();
            if let Some(e) = expect {
                assert_eq!(console.last(), Some(&e), "{}", w.name);
            }
        }
    }
}
