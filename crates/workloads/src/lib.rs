//! SPEC JVM98 benchmark analogs and micro workloads for the fault-tolerant
//! JVM reproduction.
//!
//! The paper (DSN 2003) evaluates on SPEC JVM98; we cannot run real Java
//! classfiles, so each benchmark is re-created against the `ftjvm-vm`
//! assembler with the *event profile* that drives the paper's results
//! (Table 2): the relative volume of lock acquisitions, the number of
//! distinct locked objects, the native-method and output-commit mix, and
//! multithreading (only `mtrt`). Absolute instruction counts are scaled
//! down (the entry argument multiplies workload size); see `DESIGN.md` §2
//! for the substitution argument and `EXPERIMENTS.md` for measured
//! profiles versus the paper's.
//!
//! | analog | signature (Table 2) |
//! |---|---|
//! | [`compress`] | CPU-bound, fewest locks |
//! | [`jess`] | synchronized agenda + allocation churn (GC pressure) |
//! | [`db`] | most lock acquisitions, strongly skewed to one lock |
//! | [`jack`] | most native calls (file I/O), most distinct locked objects |
//! | [`mpegaudio`] | floating-point kernels, minimal locking |
//! | [`mtrt`] | the only multithreaded benchmark (real reschedules) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compress;
pub mod db;
pub mod helpers;
pub mod jack;
pub mod jess;
pub mod micro;
pub mod mpegaudio;
pub mod mtrt;

pub use helpers::{Std, Workload};

/// All six SPEC JVM98 analogs, in the paper's figure order.
pub fn spec_suite() -> Vec<Workload> {
    vec![
        jess::workload(),
        jack::workload(),
        compress::workload(),
        db::workload(),
        mpegaudio::workload(),
        mtrt::workload(),
    ]
}
