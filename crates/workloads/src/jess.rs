//! `jess` analog — a forward-chaining rule engine.
//!
//! SPEC JVM98's `jess` is an expert-system shell solving puzzles with
//! progressively larger rule sets. Its profile: heavy lock traffic through
//! the engine's synchronized agenda (4.9 M acquisitions), a moderate
//! number of intercepted natives, and lots of short-lived allocation (rule
//! activations) — which makes it our main exerciser of the asynchronous
//! GC thread. The analog runs match-fire cycles over a fact array: each
//! cycle matches rules against facts (allocating an activation object per
//! match), pushes them through a synchronized agenda, then fires them,
//! mutating facts.

use crate::helpers::{count_loop, spin, Std, Workload};
use ftjvm_vm::class::builtin;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::Cmp;
use std::sync::Arc;

const FACTS: i64 = 56;

/// Builds the workload. Scale 1 runs 150 match-fire cycles over 56 facts.
pub fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);

    // Activation: fields 0=fact index, 1=rule id, 2=salience.
    let act = b.add_class("spec/jess/Activation", builtin::OBJECT, 3, 0);

    // Agenda: statics 0=facts array, 1=pending array (ring), 2=head,
    // 3=tail, 4=fired count.
    let agenda = b.add_class("spec/jess/Agenda", builtin::OBJECT, 0, 5);

    // push(activation): synchronized ring-buffer insert.
    let mut push = b.method("Agenda.push", 1);
    push.static_of(agenda).synchronized();
    push.get_static(agenda, 1).get_static(agenda, 3).load(0).astore();
    push.get_static(agenda, 3).push_i(1).add().push_i(256).rem().put_static(agenda, 3);
    push.ret_void();
    let push = push.build(&mut b);

    // pop() -> activation or null: synchronized ring-buffer remove.
    let mut pop = b.method("Agenda.pop", 1);
    pop.static_of(agenda).synchronized();
    {
        let m = &mut pop;
        let empty = m.new_label();
        m.get_static(agenda, 2).get_static(agenda, 3).icmp(Cmp::Eq).if_true(empty);
        m.get_static(agenda, 1).get_static(agenda, 2).aload();
        m.get_static(agenda, 2).push_i(1).add().push_i(256).rem().put_static(agenda, 2);
        m.ret_val();
        m.bind(empty);
        m.push_null().ret_val();
    }
    let pop = pop.build(&mut b);

    // fire(activation): synchronized fact mutation + fired count.
    let mut fire = b.method("Agenda.fire", 1);
    fire.static_of(agenda).synchronized();
    {
        let m = &mut fire;
        // facts[a.fact] = facts[a.fact] * 3 + a.rule, clamped mod 101.
        m.get_static(agenda, 0).load(0).get_field(0);
        m.get_static(agenda, 0).load(0).get_field(0).aload();
        m.push_i(3).mul().load(0).get_field(1).add().push_i(101).rem();
        m.astore();
        m.get_static(agenda, 4).push_i(1).add().put_static(agenda, 4);
        m.ret_void();
    }
    let fire = fire.build(&mut b);

    // match_cycle(rule_id) -> matches: scans facts, allocates an
    // activation per matching fact, pushes it.
    let mut mc = b.method("match_cycle", 1);
    {
        let m = &mut mc;
        // locals: 0=rule, 1=i, 2=matches, 3=a
        m.push_i(0).store(2);
        count_loop(m, 1, 0, FACTS, |m| {
            let skip = m.new_label();
            // Match: facts[i] % 5 == rule % 5
            m.get_static(agenda, 0).load(1).aload().push_i(5).rem();
            m.load(0).push_i(5).rem().icmp(Cmp::Ne).if_true(skip);
            m.new_obj(act).store(3);
            m.load(3).load(1).put_field(0);
            m.load(3).load(0).put_field(1);
            m.load(3).load(0).load(1).add().put_field(2);
            m.load(3).invoke(push);
            m.inc(2, 1);
            m.bind(skip);
        });
        m.load(2).ret_val();
    }
    let mc = mc.build(&mut b);

    // main(scale)
    let mut m = b.method("main", 1);
    {
        // locals: 0=scale, 1=cycles, 2=c, 3=total, 4=a
        m.push_i(FACTS).new_array().put_static(agenda, 0);
        m.push_i(256).new_array().put_static(agenda, 1);
        m.push_i(0).put_static(agenda, 2);
        m.push_i(0).put_static(agenda, 3);
        m.push_i(0).put_static(agenda, 4);
        count_loop(&mut m, 2, 0, FACTS, |m| {
            m.get_static(agenda, 0)
                .load(2)
                .load(2)
                .push_i(7)
                .mul()
                .push_i(11)
                .add()
                .push_i(101)
                .rem()
                .astore();
        });
        m.load(0).push_i(150).mul().store(1);
        m.push_i(0).store(3);
        let done = m.new_label();
        m.push_i(0).store(2);
        let top = m.bind_new_label();
        m.load(2).load(1).icmp(Cmp::Ge).if_true(done);
        // Match with rule = cycle % 7, then drain + fire the agenda.
        m.load(2).push_i(7).rem().invoke(mc).load(3).add().store(3);
        {
            let drain_done = m.new_label();
            let drain = m.bind_new_label();
            m.push_i(0).invoke(pop).store(4);
            m.load(4).if_null(drain_done);
            m.load(4).invoke(fire);
            m.goto(drain);
            m.bind(drain_done);
        }
        // Rete-network bookkeeping between cycles (pattern network walks
        // in the real jess).
        spin(&mut m, 5, 1500);
        // Every other cycle the engine samples the clock (its own
        // instrumentation — jess's ND native traffic).
        {
            let skip = m.new_label();
            m.load(2).push_i(2).rem().if_true(skip);
            m.invoke_native(std.clock, 0).pop();
            m.bind(skip);
        }
        // Every 20 cycles: progress output (jess reports per-puzzle).
        {
            let skip = m.new_label();
            m.load(2).push_i(20).rem().if_true(skip);
            m.get_static(agenda, 4).invoke_native(std.print_int, 1);
            m.bind(skip);
        }
        m.inc(2, 1).goto(top);
        m.bind(done);
        m.load(3).invoke_native(std.print_int, 1);
        m.get_static(agenda, 4).invoke_native(std.print_int, 1);
        // Checksum of final facts.
        m.push_i(0).store(3);
        count_loop(&mut m, 2, 0, FACTS, |m| {
            m.get_static(agenda, 0).load(2).aload().load(3).add().store(3);
        });
        m.load(3).invoke_native(std.print_int, 1);
        m.ret_void();
    }
    let entry = m.build(&mut b);
    Workload {
        name: "jess",
        description:
            "forward-chaining rule engine: synchronized agenda + allocation churn (GC pressure)",
        program: Arc::new(b.build(entry).expect("jess verifies")),
        multithreaded: false,
        paper_exec_secs: 167,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_core::{FtConfig, FtJvm};

    #[test]
    fn jess_fires_rules_deterministically() {
        let w = workload();
        let mut consoles = Vec::new();
        for seed in [5u64, 77] {
            let cfg = FtConfig { primary_seed: seed, ..FtConfig::default() };
            let (report, world) = FtJvm::new(w.program.clone(), cfg).run_unreplicated().unwrap();
            assert!(report.uncaught.is_empty(), "{:?}", report.uncaught);
            let texts = world.borrow().console_texts();
            consoles.push(texts);
        }
        assert_eq!(consoles[0], consoles[1]);
        assert!(consoles[0].len() >= 3);
        let n = consoles[0].len();
        let matched: i64 = consoles[0][n - 3].parse().unwrap();
        let fired: i64 = consoles[0][n - 2].parse().unwrap();
        assert_eq!(matched, fired, "every pushed activation fires");
        assert!(fired > 100);
    }

    #[test]
    fn jess_generates_allocation_pressure() {
        let w = workload();
        let mut cfg = FtConfig::default();
        cfg.vm.gc_threshold = 64;
        let (report, _) = FtJvm::new(w.program.clone(), cfg).run_unreplicated().unwrap();
        assert!(report.counters.gc_runs > 0, "activation churn must trigger the GC thread");
        assert!(report.counters.allocations > 300);
    }
}
