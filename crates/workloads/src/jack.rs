//! `jack` analog — a parser generator tokenizing its own input file.
//!
//! SPEC JVM98's `jack` generates a parser from a grammar file. Its Table 2
//! signature: the most intercepted native methods in the suite (631 295 —
//! it is file-I/O heavy), the second-most lock acquisitions (12.8 M), and
//! by far the most *distinct* locked objects (505 223): the tokenizer
//! synchronizes on a fresh token object per token. The analog writes a
//! grammar-like input file, then repeatedly re-reads and tokenizes it,
//! allocating one `Token` object per token and calling its synchronized
//! classify method, accumulating counts in a synchronized symbol table.

use crate::helpers::{count_loop, spin, Std, Workload};
use ftjvm_vm::class::builtin;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::Cmp;
use std::sync::Arc;

/// Builds the workload. Scale 1 makes 28 tokenizer passes over an
/// ~830-byte grammar.
pub fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);

    // Token: fields 0=kind, 1=length. Synchronized virtual classify.
    let token = b.add_class("spec/jack/Token", builtin::OBJECT, 2, 0);
    let classify_slot = b.declare_vslot("classify", 1, true);
    let mut classify = b.method("Token.classify", 1);
    classify.instance_of(token).synchronized();
    // return kind * 8 + min(length, 7)
    classify.load(0).get_field(0).push_i(8).mul();
    let small = classify.new_label();
    let after = classify.new_label();
    classify.load(0).get_field(1).push_i(7).icmp(Cmp::Lt).if_true(small);
    classify.push_i(7).add().ret_val();
    classify.bind(small);
    classify.load(0).get_field(1).add().ret_val();
    classify.bind(after);
    let classify = classify.build(&mut b);
    b.set_vtable(token, classify_slot, classify);

    // SymTab: statics 0=buckets array (ints), 1=token count.
    let symtab = b.add_class("spec/jack/SymTab", builtin::OBJECT, 0, 2);
    let mut bump = b.method("SymTab.bump", 1);
    bump.static_of(symtab).synchronized();
    // buckets[class] += 1; count += 1
    bump.get_static(symtab, 0).load(0);
    bump.get_static(symtab, 0).load(0).aload().push_i(1).add();
    bump.astore();
    bump.get_static(symtab, 1).push_i(1).add().put_static(symtab, 1);
    bump.ret_void();
    let bump = bump.build(&mut b);

    // write_grammar(fd): writes a synthetic grammar of productions.
    let line = b.intern("expr := term PLUS term ; term := NUM | LP expr RP ;\n");
    let mut writeg = b.method("write_grammar", 1);
    {
        let m = &mut writeg;
        count_loop(m, 1, 0, 16, |m| {
            // fwrite(fd, line, line.length)
            m.load(0).const_str(line).dup().alen().invoke_native(std.fwrite, 3).pop();
        });
        m.ret_void();
    }
    let writeg = writeg.build(&mut b);

    // tokenize_pass(fd) -> tokens: seeks to 0, reads chunks, splits into
    // "tokens" (maximal runs of non-space bytes), allocates a Token per
    // token, classifies it (synchronized on the fresh object), and bumps
    // the symbol table.
    let mut pass = b.method("tokenize_pass", 1);
    {
        let m = &mut pass;
        // locals: 0=fd, 1=buf, 2=n, 3=i, 4=run_len, 5=kind, 6=tok, 7=total
        m.load(0).push_i(0).invoke_native(std.fseek, 2);
        m.push_i(48).new_array().store(1);
        m.push_i(0).store(7);
        m.push_i(0).store(4); // run length persists across chunk reads
        let eof = m.new_label();
        let chunk_top = m.bind_new_label();
        m.load(0).load(1).push_i(48).invoke_native(std.fread, 3).store(2);
        m.load(2).if_not(eof);
        // scan the chunk
        let scan_done = m.new_label();
        m.push_i(0).store(3);
        let scan_top = m.bind_new_label();
        m.load(3).load(2).icmp(Cmp::Ge).if_true(scan_done);
        {
            // byte = buf[i]; if byte == ' ' or '\n': close the run.
            let close_run = m.new_label();
            let no_token = m.new_label();
            let next = m.new_label();
            m.load(1).load(3).aload().store(5);
            m.load(5).push_i(32).icmp(Cmp::Eq).if_true(close_run);
            m.load(5).push_i(10).icmp(Cmp::Eq).if_true(close_run);
            m.inc(4, 1).goto(next);
            m.bind(close_run);
            m.load(4).if_not(no_token);
            // Fresh token object: kind = first-byte class (alpha/punct),
            // length = run length. Lock it via the synchronized classify.
            m.new_obj(token).store(6);
            m.load(6).load(5).push_i(3).rem().put_field(0);
            m.load(6).load(4).put_field(1);
            m.load(6).invoke_virtual(classify_slot, 1);
            m.push_i(24).rem().invoke(bump);
            // Grammar-production bookkeeping per token (NFA construction
            // in the real jack).
            spin(m, 8, 22);
            m.inc(7, 1);
            m.push_i(0).store(4);
            m.bind(no_token);
            m.bind(next);
        }
        m.inc(3, 1).goto(scan_top);
        m.bind(scan_done);
        m.goto(chunk_top);
        m.bind(eof);
        m.load(7).ret_val();
    }
    let pass = pass.build(&mut b);

    // main(scale)
    let name = b.intern("grammar.jack");
    let mut m = b.method("main", 1);
    {
        // locals: 0=scale, 1=fd, 2=passes, 3=i, 4=total
        m.push_i(24).new_array().put_static(symtab, 0);
        m.push_i(0).put_static(symtab, 1);
        // Zero buckets.
        count_loop(&mut m, 3, 0, 24, |m| {
            m.get_static(symtab, 0).load(3).push_i(0).astore();
        });
        m.const_str(name).invoke_native(std.fopen, 1).store(1);
        m.load(1).invoke(writeg);
        m.load(0).push_i(28).mul().store(2);
        m.push_i(0).store(4);
        let done = m.new_label();
        m.push_i(0).store(3);
        let top = m.bind_new_label();
        m.load(3).load(2).icmp(Cmp::Ge).if_true(done);
        m.load(1).invoke(pass).load(4).add().store(4);
        m.inc(3, 1).goto(top);
        m.bind(done);
        m.load(1).invoke_native(std.fclose, 1);
        m.load(4).invoke_native(std.print_int, 1);
        m.get_static(symtab, 1).invoke_native(std.print_int, 1);
        m.ret_void();
    }
    let entry = m.build(&mut b);
    Workload {
        name: "jack",
        description:
            "parser-generator tokenizer: file-I/O heavy, one fresh locked object per token",
        program: Arc::new(b.build(entry).expect("jack verifies")),
        multithreaded: false,
        paper_exec_secs: 182,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_core::{FtConfig, FtJvm};

    #[test]
    fn jack_tokenizes_consistently() {
        let w = workload();
        let (report, world) =
            FtJvm::new(w.program.clone(), FtConfig::default()).run_unreplicated().unwrap();
        assert!(report.uncaught.is_empty(), "{:?}", report.uncaught);
        let console = world.borrow().console_texts();
        assert_eq!(console.len(), 2);
        let total: i64 = console[0].parse().unwrap();
        let count: i64 = console[1].parse().unwrap();
        assert_eq!(total, count, "every token is bumped once");
        // 16 lines × 14 tokens × 28 passes = 6272 tokens.
        assert_eq!(total, 6272);
        // Jack's signature: many native calls (file I/O) relative to other
        // single-threaded workloads.
        assert!(report.counters.native_calls > 100);
    }
}
