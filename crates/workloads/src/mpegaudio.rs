//! `mpegaudio` analog — a DSP-style decoder loop.
//!
//! SPEC JVM98's `mpegaudio` decodes MPEG-Layer-3 audio: floating-point
//! filter banks over framed input, with very few locks (14 717), few
//! intercepted natives (10 031, mostly input reads) and almost no output
//! commits (10). The analog synthesizes "frames" of samples, runs a
//! windowed subband filter (double-precision dot products) per frame, and
//! accumulates an energy figure through a synchronized sink, printing the
//! total at the end.

use crate::helpers::{count_loop, Std, Workload};
use ftjvm_vm::class::builtin;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::Insn;
use std::sync::Arc;

/// Builds the workload. Scale 1 decodes 448 frames of 64 samples.
pub fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);

    // Sink: static 0 = accumulated energy (int fixed-point).
    let sink = b.add_class("spec/mpegaudio/Sink", builtin::OBJECT, 0, 1);
    let mut absorb = b.method("Sink.absorb", 1);
    absorb.static_of(sink).synchronized();
    absorb.get_static(sink, 0).load(0).add().put_static(sink, 0).ret_void();
    let absorb = absorb.build(&mut b);

    // synth_frame(frame_no, samples): fills the sample array with a
    // deterministic waveform.
    let mut synth = b.method("synth_frame", 2);
    {
        let m = &mut synth;
        // locals: 0=frame, 1=arr, 2=i
        count_loop(m, 2, 0, 64, |m| {
            // arr[i] = ((i * 7 + frame * 13) % 31) - 15
            m.load(1).load(2);
            m.load(2).push_i(7).mul().load(0).push_i(13).mul().add();
            m.push_i(31).rem().push_i(15).sub();
            m.astore();
        });
        m.ret_void();
    }
    let synth = synth.build(&mut b);

    // filter(samples) -> energy: double-precision windowed dot product
    // over 4 subbands.
    let mut filter = b.method("filter", 1);
    {
        let m = &mut filter;
        // locals: 0=arr, 1=band, 2=i, 3(double acc in stack? store in 3), 4=tmp
        // acc (double) kept in local 3.
        m.push_d(0.0).store(3);
        count_loop(m, 1, 0, 4, |m| {
            count_loop(m, 2, 0, 64, |m| {
                // acc += arr[i] * window(band, i)
                // window = 1.0 / (1 + band + (i % 8))
                m.load(3);
                m.load(0).load(2).aload().emit(Insn::I2D);
                m.push_d(1.0);
                m.push_i(1).load(1).add().load(2).push_i(8).rem().add().emit(Insn::I2D);
                m.emit(Insn::DDiv);
                m.emit(Insn::DMul);
                m.emit(Insn::DAdd);
                m.store(3);
            });
        });
        // Return |acc| * 1000 as fixed-point int.
        m.load(3).push_d(1000.0).emit(Insn::DMul).emit(Insn::D2I).store(4);
        let pos = m.new_label();
        m.load(4).push_i(0).icmp(ftjvm_vm::Cmp::Ge).if_true(pos);
        m.load(4).emit(Insn::Neg).ret_val();
        m.bind(pos);
        m.load(4).ret_val();
    }
    let filter = filter.build(&mut b);

    // main(scale)
    let mut m = b.method("main", 1);
    {
        // locals: 0=scale, 1=frames, 2=i, 3=arr
        m.push_i(0).put_static(sink, 0);
        m.push_i(0).store(4); // local energy accumulator
        m.load(0).push_i(448).mul().store(1);
        m.push_i(64).new_array().store(3);
        let done = m.new_label();
        m.push_i(0).store(2);
        let top = m.bind_new_label();
        m.load(2).load(1).icmp(ftjvm_vm::Cmp::Ge).if_true(done);
        m.load(2).load(3).invoke(synth);
        // Accumulate locally; flush through the synchronized sink every 32
        // frames (mpegaudio locks rarely).
        m.load(3).invoke(filter).load(4).add().store(4);
        {
            let skip = m.new_label();
            m.load(2).push_i(32).rem().if_true(skip);
            m.load(4).invoke(absorb);
            m.push_i(0).store(4);
            m.bind(skip);
        }
        // Occasional ND input (the real decoder reads its bitstream; ours
        // samples the RNG every 48 frames to model the input natives).
        {
            let skip = m.new_label();
            m.load(2).push_i(48).rem().if_true(skip);
            m.push_i(100).invoke_native(std.rand, 1).pop();
            m.bind(skip);
        }
        m.inc(2, 1).goto(top);
        m.bind(done);
        m.load(4).invoke(absorb); // flush the remainder
        m.get_static(sink, 0).invoke_native(std.print_int, 1);
        m.ret_void();
    }
    let entry = m.build(&mut b);
    Workload {
        name: "mpegaudio",
        description:
            "floating-point subband filter over synthesized frames (few locks, few natives)",
        program: Arc::new(b.build(entry).expect("mpegaudio verifies")),
        multithreaded: false,
        paper_exec_secs: 419,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_core::{FtConfig, FtJvm};

    #[test]
    fn mpegaudio_produces_stable_energy() {
        let w = workload();
        let (report, world) =
            FtJvm::new(w.program.clone(), FtConfig::default()).run_unreplicated().unwrap();
        assert!(report.uncaught.is_empty(), "{:?}", report.uncaught);
        let console = world.borrow().console_texts();
        assert_eq!(console.len(), 1);
        let energy: i64 = console[0].parse().unwrap();
        assert!(energy > 0);
        // Few locks, few natives — the mpegaudio signature.
        assert!(report.counters.monitor_acquires < 100);
        assert!(report.counters.native_calls < 50);
        assert!(report.counters.instructions > 10_000, "but plenty of computation");
    }
}
