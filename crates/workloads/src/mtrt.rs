//! `mtrt` analog — a two-thread raytracer over a shared work queue.
//!
//! SPEC JVM98's `mtrt` renders a dinosaur scene with two worker threads —
//! the only multithreaded benchmark in the suite, and therefore the only
//! one whose thread-scheduling replication actually transmits schedule
//! records (Table 2: ≈29 k reschedules, 702 k lock acquisitions). The
//! analog traces a ray grid: scanlines are handed out through a
//! synchronized work queue with `wait`/`notify`, each worker intersects
//! rays against a small sphere list (fixed-point arithmetic), and a
//! synchronized framebuffer-checksum sink accumulates per-line results.

use crate::helpers::{count_loop, Std, Workload};
use ftjvm_vm::class::builtin;
use ftjvm_vm::program::ProgramBuilder;
use ftjvm_vm::Cmp;
use std::sync::Arc;

const WIDTH: i64 = 16;
const SPHERES: i64 = 6;

/// Builds the workload. Scale 1 renders 336 scanlines of 16 pixels with
/// two worker threads.
pub fn workload() -> Workload {
    let mut b = ProgramBuilder::new();
    let std = Std::import(&mut b);

    // Scene: statics 0=sphere xs, 1=sphere ys, 2=sphere rs (arrays),
    //        3=next scanline, 4=lines total, 5=checksum, 6=workers done.
    let scene = b.add_class("spec/mtrt/Scene", builtin::OBJECT, 0, 7);

    // next_line() -> line or -1 : the synchronized work queue (the hot
    // lock both workers contend on — this produces the real reschedules).
    let mut next_line = b.method("Scene.next_line", 1);
    next_line.static_of(scene).synchronized();
    {
        let m = &mut next_line;
        let empty = m.new_label();
        m.get_static(scene, 3).get_static(scene, 4).icmp(Cmp::Ge).if_true(empty);
        m.get_static(scene, 3).dup().push_i(1).add().put_static(scene, 3);
        m.ret_val();
        m.bind(empty);
        m.push_i(-1).ret_val();
    }
    let next_line = next_line.build(&mut b);

    // absorb(sum): synchronized checksum sink.
    let mut absorb = b.method("Scene.absorb", 1);
    absorb.static_of(scene).synchronized();
    absorb.get_static(scene, 5).load(0).add().push_i(1_000_003).rem().put_static(scene, 5);
    absorb.ret_void();
    let absorb = absorb.build(&mut b);

    // trace(x, y) -> shade : fixed-point ray-sphere intersection against
    // all spheres; shade = sum of hits weighted by depth.
    let mut trace = b.method("trace", 2);
    {
        let m = &mut trace;
        // locals: 0=x, 1=y, 2=s, 3=shade, 4=dx, 5=dy, 6=d2
        m.push_i(0).store(3);
        count_loop(m, 2, 0, SPHERES, |m| {
            // dx = x - xs[s]; dy = y - ys[s]; d2 = dx*dx + dy*dy
            m.load(0).get_static(scene, 0).load(2).aload().sub().store(4);
            m.load(1).get_static(scene, 1).load(2).aload().sub().store(5);
            m.load(4).load(4).mul().load(5).load(5).mul().add().store(6);
            // if d2 < rs[s]^2: shade += (rs[s]^2 - d2) / (s + 1)
            let miss = m.new_label();
            let r2 = |m: &mut ftjvm_vm::program::MethodBuilder| {
                m.get_static(scene, 2).load(2).aload();
                m.get_static(scene, 2).load(2).aload().mul();
            };
            r2(m);
            m.load(6).icmp(Cmp::Gt).if_not(miss);
            r2(m);
            m.load(6).sub().load(2).push_i(1).add().div();
            m.load(3).add().store(3);
            m.bind(miss);
        });
        m.load(3).ret_val();
    }
    let trace = trace.build(&mut b);

    // render_line(y) -> line sum.
    let mut render = b.method("render_line", 1);
    {
        let m = &mut render;
        // locals: 0=y, 1=x, 2=sum
        m.push_i(0).store(2);
        count_loop(m, 1, 0, WIDTH, |m| {
            m.load(1).load(0).invoke(trace).load(2).add().store(2);
        });
        m.load(2).ret_val();
    }
    let render = render.build(&mut b);

    // worker(arg): pulls scanlines until the queue is dry, then bumps the
    // done count and notifies main.
    let mut w = b.method("worker", 1);
    {
        let m = &mut w;
        // locals: 0=arg, 1=line
        let out = m.new_label();
        let top = m.bind_new_label();
        m.push_i(0).invoke(next_line).store(1);
        m.load(1).push_i(0).icmp(Cmp::Lt).if_true(out);
        m.load(1).invoke(render).invoke(absorb);
        // The real tracer samples the clock for progress reporting.
        {
            let skip = m.new_label();
            m.load(1).push_i(128).rem().if_true(skip);
            m.invoke_native(std.clock, 0).pop();
            m.bind(skip);
        }
        m.goto(top);
        m.bind(out);
        m.class_obj(scene).monitor_enter();
        m.get_static(scene, 6).push_i(1).add().put_static(scene, 6);
        m.class_obj(scene).invoke_native(std.notify_all, 1);
        m.class_obj(scene).monitor_exit();
        m.ret_void();
    }
    let w = w.build(&mut b);

    // main(scale)
    let mut m = b.method("main", 1);
    {
        // Scene setup (deterministic).
        m.push_i(SPHERES).new_array().put_static(scene, 0);
        m.push_i(SPHERES).new_array().put_static(scene, 1);
        m.push_i(SPHERES).new_array().put_static(scene, 2);
        count_loop(&mut m, 1, 0, SPHERES, |m| {
            m.get_static(scene, 0).load(1).load(1).push_i(5).mul().push_i(2).add().astore();
            m.get_static(scene, 1).load(1).load(1).push_i(3).mul().push_i(4).add().astore();
            m.get_static(scene, 2).load(1).load(1).push_i(2).add().astore();
        });
        m.push_i(0).put_static(scene, 3);
        m.load(0).push_i(336).mul().put_static(scene, 4);
        m.push_i(0).put_static(scene, 5);
        m.push_i(0).put_static(scene, 6);
        // Two workers (as in mtrt).
        m.push_method(w).push_i(0).invoke_native(std.spawn, 2);
        m.push_method(w).push_i(1).invoke_native(std.spawn, 2);
        // Wait for both with wait/notify on the scene lock.
        m.class_obj(scene).monitor_enter();
        let check = m.bind_new_label();
        let ready = m.new_label();
        m.get_static(scene, 6).push_i(2).icmp(Cmp::Eq).if_true(ready);
        m.class_obj(scene).invoke_native(std.wait, 1);
        m.goto(check);
        m.bind(ready);
        // Read the results while still holding the scene lock (R4A
        // discipline: the workers wrote them under this lock).
        m.get_static(scene, 5).store(1);
        m.get_static(scene, 4).store(2);
        m.class_obj(scene).monitor_exit();
        m.load(1).invoke_native(std.print_int, 1);
        m.load(2).invoke_native(std.print_int, 1);
        m.ret_void();
    }
    let entry = m.build(&mut b);
    Workload {
        name: "mtrt",
        description:
            "two-thread raytracer over a synchronized scanline queue (the multithreaded benchmark)",
        program: Arc::new(b.build(entry).expect("mtrt verifies")),
        multithreaded: true,
        paper_exec_secs: 163,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftjvm_core::{FtConfig, FtJvm, ReplicationMode};
    use ftjvm_netsim::FaultPlan;

    #[test]
    fn mtrt_checksum_is_schedule_independent() {
        // The scanline partition between workers varies with scheduling,
        // but the checksum is a sum mod p — schedule-independent… except
        // `absorb` applies the modulus non-commutatively. Use the rendered
        // line count and determinism per seed instead.
        let w = workload();
        let (report, world) =
            FtJvm::new(w.program.clone(), FtConfig::default()).run_unreplicated().unwrap();
        assert!(report.uncaught.is_empty(), "{:?}", report.uncaught);
        let console = world.borrow().console_texts();
        assert_eq!(console.len(), 2);
        assert_eq!(console[1], "336");
        assert_eq!(report.counters.spawns, 2);
        assert!(report.counters.context_switches > 4, "two workers must interleave");
    }

    #[test]
    fn mtrt_failover_under_both_modes() {
        let w = workload();
        for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
            // Reference: this mode's own failure-free run (checksum depends
            // on the primary's interleaving via the modulus).
            let free = FtJvm::new(w.program.clone(), FtConfig { mode, ..FtConfig::default() })
                .run_replicated()
                .expect("failure-free");
            let report = FtJvm::new(
                w.program.clone(),
                FtConfig { mode, fault: FaultPlan::BeforeOutput(0), ..FtConfig::default() },
            )
            .run_with_failure()
            .expect("failover");
            assert!(report.crashed);
            assert_eq!(report.console(), free.console(), "{mode}");
            report.check_no_duplicate_outputs().expect("exactly-once");
        }
    }

    #[test]
    fn mtrt_is_the_rescheduling_benchmark() {
        let w = workload();
        let ts = FtJvm::new(
            w.program.clone(),
            FtConfig { mode: ReplicationMode::ThreadSched, ..FtConfig::default() },
        )
        .run_replicated()
        .expect("ts");
        assert!(ts.primary_stats.sched_records > 3, "mtrt transmits schedule records");
    }
}
