//! Locks in the Table 2 profile relationships the paper's evaluation
//! depends on, so that workload edits cannot silently break the figures.

use ftjvm_core::{FtConfig, FtJvm, ReplicationMode};
use std::collections::HashMap;

struct Profile {
    locks: u64,
    objects: u64,
    natives: u64,
    sched: u64,
    base_ns: u64,
}

fn profiles() -> HashMap<&'static str, Profile> {
    let mut out = HashMap::new();
    for w in ftjvm_workloads::spec_suite() {
        let (base, _) = FtJvm::new(w.program.clone(), FtConfig::default())
            .run_unreplicated()
            .expect("baseline");
        let ts = FtJvm::new(
            w.program.clone(),
            FtConfig { mode: ReplicationMode::ThreadSched, ..FtConfig::default() },
        )
        .run_replicated()
        .expect("ts run");
        out.insert(
            w.name,
            Profile {
                locks: base.counters.monitor_acquires,
                objects: base.counters.objects_locked,
                natives: base.counters.native_calls,
                sched: ts.primary_stats.sched_records,
                base_ns: base.acct.total().as_nanos(),
            },
        );
    }
    out
}

#[test]
fn table2_profile_relationships_hold() {
    let p = profiles();
    let get = |n: &str| p.get(n).unwrap();

    // db acquires the most locks — by a wide margin.
    let db = get("db");
    for name in ["jess", "jack", "compress", "mpegaudio", "mtrt"] {
        assert!(
            db.locks > 3 * get(name).locks,
            "db ({}) must dominate {name} ({})",
            db.locks,
            get(name).locks
        );
    }
    // jack locks the most distinct objects (a fresh token object each).
    let jack = get("jack");
    for name in ["jess", "compress", "db", "mpegaudio", "mtrt"] {
        assert!(jack.objects > get(name).objects, "jack objects vs {name}");
    }
    // jack makes the most native calls (file-I/O heavy).
    for name in ["jess", "compress", "db", "mpegaudio", "mtrt"] {
        assert!(jack.natives > get(name).natives, "jack natives vs {name}");
    }
    // Only mtrt transmits schedule records.
    for name in ["jess", "jack", "compress", "db", "mpegaudio"] {
        assert_eq!(get(name).sched, 0, "{name} must not reschedule");
    }
    assert!(get("mtrt").sched > 0, "mtrt must reschedule");
    // compress and mpegaudio barely lock at all.
    assert!(get("compress").locks < 100);
    assert!(get("mpegaudio").locks < 100);
    // Baseline ordering: compress is the longest benchmark, as in the
    // paper's Figure 2 caption (compress 541 s).
    for name in ["jess", "jack", "db", "mpegaudio", "mtrt"] {
        assert!(
            get("compress").base_ns > get(name).base_ns,
            "compress must be the longest baseline (vs {name})"
        );
    }
}

#[test]
fn all_workloads_replicate_cleanly_under_both_modes() {
    for w in ftjvm_workloads::spec_suite() {
        for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
            let report = FtJvm::new(w.program.clone(), FtConfig { mode, ..FtConfig::default() })
                .run_replicated()
                .unwrap_or_else(|e| panic!("{} {mode}: {e}", w.name));
            assert!(!report.crashed);
            assert!(report.primary.uncaught.is_empty(), "{} {mode}", w.name);
            report.check_no_duplicate_outputs().expect("unique output ids");
        }
    }
}

#[test]
fn workloads_are_race_free_under_the_lockset_detector() {
    // Every SPEC analog must satisfy R4A (they run under lock-sync in the
    // figures) — verify with the Eraser-style detector, the way the paper
    // suggests checking real programs.
    use ftjvm_vm::env::{SimEnv, World};
    use ftjvm_vm::exec::{Vm, VmConfig};
    use ftjvm_vm::{NativeRegistry, NoopCoordinator};
    for w in ftjvm_workloads::spec_suite() {
        let world = World::shared();
        let env = SimEnv::new("verify", world, ftjvm_netsim::SimTime::ZERO, 3);
        let cfg = VmConfig { race_detect: true, ..VmConfig::default() };
        let mut vm =
            Vm::new(w.program.clone(), NativeRegistry::with_builtins(), env, cfg).expect("vm");
        let report = vm.run(&mut NoopCoordinator::new()).expect("runs");
        assert!(report.races.is_empty(), "{} violates R4A: {:?}", w.name, report.races);
    }
}

#[test]
fn scale_argument_scales_event_counts_linearly() {
    // The entry argument multiplies workload size: db at scale 2 performs
    // ~2x the queries, locks and instructions of scale 1.
    let w = ftjvm_workloads::db::workload();
    let run_at = |scale: i64| {
        let mut cfg = FtConfig::default();
        cfg.vm.entry_arg = scale;
        FtJvm::new(w.program.clone(), cfg).run_unreplicated().expect("runs").0.counters
    };
    let one = run_at(1);
    let two = run_at(2);
    let ratio = two.monitor_acquires as f64 / one.monitor_acquires as f64;
    assert!((1.9..2.1).contains(&ratio), "lock ratio {ratio}");
    let iratio = two.instructions as f64 / one.instructions as f64;
    assert!((1.8..2.2).contains(&iratio), "instruction ratio {iratio}");
}
