//! Cross-crate integration: garbage-collection interactions with
//! replication (paper §4.3) and side-effect-handler behavior (§4.4).

use ftjvm::netsim::{FaultPlan, SimTime};
use ftjvm::vm::class::builtin;
use ftjvm::vm::program::ProgramBuilder;
use ftjvm::vm::{Cmp, Program};
use ftjvm::{FtConfig, FtJvm, ReplicationMode, SeRegistry, SideEffectHandler};
use std::sync::Arc;

/// A workload that allocates garbage under memory pressure while doing
/// synchronized work — GC system-thread activity interleaves with the
/// replicated application threads (the paper's system-thread interaction
/// problem, §4.2).
fn gc_pressure_program() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("G", builtin::OBJECT, 0, 2);
    let mut inc = b.method("inc", 1);
    inc.static_of(cls).synchronized();
    inc.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
    let inc = inc.build(&mut b);
    let mut fin = b.method("fin", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
    let fin = fin.build(&mut b);
    let mut w = b.method("worker", 1);
    {
        let m = &mut w;
        let done = m.new_label();
        m.push_i(80).store(1);
        let top = m.bind_new_label();
        m.load(1).if_not(done);
        // Allocate garbage (dead immediately) then synchronized work.
        m.push_i(6).new_array().pop();
        m.new_obj(builtin::OBJECT).pop();
        m.push_i(0).invoke(inc);
        m.inc(1, -1).goto(top);
        m.bind(done);
        m.push_i(0).invoke(fin).ret_void();
    }
    let w = w.build(&mut b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..3 {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(3).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(print, 1).ret_void();
    let entry = m.build(&mut b);
    Arc::new(b.build(entry).expect("verifies"))
}

#[test]
fn gc_thread_activity_does_not_break_replay() {
    // Force frequent collections: the GC system thread takes the heap lock
    // and contends with application threads, but system threads are not
    // replicated — replay must still be exact.
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let mut cfg = FtConfig { mode, fault: FaultPlan::BeforeOutput(0), ..FtConfig::default() };
        cfg.vm.gc_threshold = 50; // heavy pressure
        let program = gc_pressure_program();
        let mut free_cfg = cfg.clone();
        free_cfg.fault = FaultPlan::None;
        let free = FtJvm::new(program.clone(), free_cfg).run_replicated().unwrap();
        assert!(free.primary.counters.gc_runs > 0, "GC must actually run");
        let failed = FtJvm::new(program, cfg).run_with_failure().unwrap();
        assert_eq!(failed.console(), vec!["240"], "{mode}");
        assert_eq!(failed.console(), free.console(), "{mode}");
    }
}

#[test]
fn gc_runs_differ_between_replicas_without_breaking_state() {
    // The backup's GC runs at different points than the primary's (its own
    // allocation timing) — the paper's point that collector behavior need
    // not be replicated as long as soft refs are strong and finalizers are
    // deterministic.
    let mut cfg = FtConfig {
        mode: ReplicationMode::ThreadSched,
        fault: FaultPlan::BeforeOutput(0),
        ..FtConfig::default()
    };
    cfg.vm.gc_threshold = 50;
    let program = gc_pressure_program();
    let failed = FtJvm::new(program, cfg).run_with_failure().unwrap();
    assert_eq!(failed.console(), vec!["240"]);
    let backup = failed.backup.as_ref().expect("backup ran");
    assert!(backup.counters.gc_runs > 0);
}

/// A user-supplied side-effect handler that counts protocol upcalls —
/// applications register their own handlers exactly like the built-ins
/// (paper: "Applications can incorporate their own handlers using the same
/// functions").
#[derive(Debug, Default)]
struct CountingHandler;

static LOG_CALLS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
static RESTORE_CALLS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

impl SideEffectHandler for CountingHandler {
    fn register(&self) -> ftjvm::replication::SeRegistration {
        ftjvm::replication::SeRegistration { name: "counting", natives: vec!["sys.rand"] }
    }
    fn log(
        &mut self,
        _env: &ftjvm::vm::SimEnv,
        _native: &str,
        _args: &[ftjvm::vm::Value],
        _outcome: &ftjvm::vm::native::NativeOutcome,
        _output_id: Option<u64>,
    ) -> Option<bytes::Bytes> {
        LOG_CALLS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        None
    }
    fn restore(&mut self, _env: &mut ftjvm::vm::SimEnv) {
        RESTORE_CALLS.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    }
}

#[test]
fn user_side_effect_handlers_receive_upcalls() {
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let rand = b.import_native("sys.rand", 1, true);
    let mut m = b.method("main", 1);
    for _ in 0..5 {
        m.push_i(10).invoke_native(rand, 1).pop();
    }
    m.push_i(1).invoke_native(print, 1).ret_void();
    let entry = m.build(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    fn registry() -> SeRegistry {
        let mut r = SeRegistry::with_builtins();
        r.add(Box::new(CountingHandler));
        r
    }
    let cfg = FtConfig {
        mode: ReplicationMode::LockSync,
        fault: FaultPlan::BeforeOutput(0),
        se_factory: registry,
        ..FtConfig::default()
    };
    LOG_CALLS.store(0, std::sync::atomic::Ordering::SeqCst);
    RESTORE_CALLS.store(0, std::sync::atomic::Ordering::SeqCst);
    let report = FtJvm::new(program, cfg).run_with_failure().unwrap();
    assert!(report.crashed);
    assert_eq!(report.console(), vec!["1"]);
    // The handler's log ran at the primary for each managed native, and
    // restore ran exactly once at the backup.
    assert!(LOG_CALLS.load(std::sync::atomic::Ordering::SeqCst) >= 5);
    assert_eq!(RESTORE_CALLS.load(std::sync::atomic::Ordering::SeqCst), 1);
}

#[test]
fn detection_latency_follows_detector_parameters() {
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let mut m = b.method("main", 1);
    m.push_i(7).invoke_native(print, 1).ret_void();
    let entry = m.build(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let cfg = FtConfig {
        fault: FaultPlan::BeforeOutput(0),
        detector: ftjvm::netsim::FailureDetector::new(SimTime::from_millis(20), 4),
        ..FtConfig::default()
    };
    let report = FtJvm::new(program, cfg).run_with_failure().unwrap();
    // Detection is measured from observed heartbeat arrivals: the deadline
    // re-arms at the startup heartbeat and fires interval × misses = 80 ms
    // later, a sub-millisecond head start before the crash.
    assert!(report.detection_latency >= SimTime::from_millis(79));
    assert!(report.detection_latency <= SimTime::from_millis(81));
}
