//! Equivalence suite for the pair-as-value refactor: the legacy
//! single-pair entry points (`run_cold` / `run_hot` and the checkpointed
//! variants, now thin wrappers over the resumable `PairTask` state
//! machine) must stay **byte-identical** to the pre-refactor drivers.
//!
//! The digests below were captured from the monolithic loop drivers
//! immediately before the refactor (PR 6 behavior): a CRC over the
//! console bytes plus every stat a driver decision could perturb —
//! record/byte counts, flush counts, and the measured detection /
//! replay / failover latencies in nanoseconds. Any divergence in
//! operation *order* (an extra slice, a reordered drain, a different
//! promotion instant) shows up in at least one field.

use ftjvm::netsim::{FailureDetector, FaultPlan, SimTime, WireCodec};
use ftjvm::workloads::{micro, Workload};
use ftjvm::{CheckpointPlan, FtConfig, FtJvm, LagBudget, PairReport, ReplicationMode};

/// One pinned configuration's observable fingerprint.
#[derive(Debug, PartialEq, Eq)]
struct Digest {
    /// CRC32C over the console lines (joined with `\n`).
    console_crc: u32,
    console_lines: u64,
    messages_logged: u64,
    bytes_logged: u64,
    flushes: u64,
    heartbeats: u64,
    crashed: bool,
    detection_ns: u64,
    replay_ns: u64,
    failover_ns: u64,
}

fn digest(report: &PairReport) -> Digest {
    let console = report.console().join("\n");
    let s = &report.primary_stats;
    Digest {
        console_crc: ftjvm::replication::crc32c(console.as_bytes()),
        console_lines: report.console().len() as u64,
        messages_logged: s.messages_logged(),
        bytes_logged: s.bytes_logged,
        flushes: s.flushes,
        heartbeats: s.heartbeats,
        crashed: report.crashed,
        detection_ns: report.detection_latency.as_nanos(),
        replay_ns: report.recovery_replay_time.as_nanos(),
        failover_ns: report.failover_latency.as_nanos(),
    }
}

/// The mid-run crash points of the failover sweeps (mtrt commits its
/// interleaving-dependent checksum at output 0, so it crashes there).
fn crash_fault(name: &str) -> FaultPlan {
    match name {
        "compress" => FaultPlan::AfterInstructions(2_000_000),
        "jess" => FaultPlan::AfterInstructions(300_000),
        "db" => FaultPlan::AfterInstructions(800_000),
        "mpegaudio" => FaultPlan::AfterInstructions(1_000_000),
        "mtrt" => FaultPlan::BeforeOutput(0),
        "jack" => FaultPlan::AfterInstructions(400_000),
        _ => FaultPlan::AfterInstructions(100_000),
    }
}

fn run_case(
    w: &Workload,
    mode: ReplicationMode,
    lag_budget: LagBudget,
    codec: WireCodec,
) -> Digest {
    let cfg =
        FtConfig { mode, codec, lag_budget, fault: crash_fault(w.name), ..FtConfig::default() };
    let report = FtJvm::new(w.program.clone(), cfg)
        .run_with_failure()
        .unwrap_or_else(|e| panic!("{} {mode} {lag_budget} {codec:?}: {e}", w.name));
    report
        .check_no_duplicate_outputs()
        .unwrap_or_else(|id| panic!("{} {mode} {lag_budget} {codec:?}: dup output {id}", w.name));
    digest(&report)
}

/// The eight pinned configurations per workload: cold/hot × fixed/compact
/// × lock-sync/thread-sched.
fn matrix(w: &Workload) -> Vec<(String, Digest)> {
    let mut out = Vec::new();
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        for lag in [LagBudget::Cold, LagBudget::Hot] {
            for codec in [WireCodec::Fixed, WireCodec::Compact] {
                let key = format!("{}/{mode}/{lag}/{codec:?}", w.name);
                out.push((key, run_case(w, mode, lag, codec)));
            }
        }
    }
    out
}

fn check_workload(w: &Workload, pinned: &[(&str, Digest)]) {
    let got = matrix(w);
    assert_eq!(got.len(), pinned.len(), "{}: matrix size", w.name);
    for ((key, d), (pkey, pd)) in got.iter().zip(pinned) {
        assert_eq!(key, pkey, "{}: case order", w.name);
        assert_eq!(d, pd, "{key}: diverged from the pre-refactor driver");
    }
}

macro_rules! pinned {
    ($key:expr, $crc:expr, $lines:expr, $msgs:expr, $bytes:expr, $flushes:expr, $hb:expr,
     $crashed:expr, $det:expr, $replay:expr, $fail:expr) => {
        (
            $key,
            Digest {
                console_crc: $crc,
                console_lines: $lines,
                messages_logged: $msgs,
                bytes_logged: $bytes,
                flushes: $flushes,
                heartbeats: $hb,
                crashed: $crashed,
                detection_ns: $det,
                replay_ns: $replay,
                failover_ns: $fail,
            },
        )
    };
}

/// `cargo test --release --test pair_equivalence -- --ignored --nocapture`
/// regenerates the pinned table (run on the pre-refactor tree to capture,
/// or after an *intentional* behavior change to re-pin).
#[test]
#[ignore = "digest generator, not a check"]
fn generate_digests() {
    for w in ftjvm::workloads::spec_suite() {
        for (key, d) in matrix(&w) {
            println!(
                "pinned!(\"{key}\", {:#x}, {}, {}, {}, {}, {}, {}, {}, {}, {}),",
                d.console_crc,
                d.console_lines,
                d.messages_logged,
                d.bytes_logged,
                d.flushes,
                d.heartbeats,
                d.crashed,
                d.detection_ns,
                d.replay_ns,
                d.failover_ns
            );
        }
    }
    let d = reintegration_digest();
    println!("reintegration: ({:#x}, {}, {}, {}, {}, {})", d.0, d.1, d.2, d.3, d.4, d.5);
}

#[test]
fn jess_pinned() {
    check_workload(
        &ftjvm::workloads::jess::workload(),
        &[
            pinned!(
                "jess/lock-sync/cold/Fixed",
                0x9e844c4c,
                11,
                1363,
                45088,
                3,
                2,
                true,
                136632120,
                23500000,
                160132120
            ),
            pinned!(
                "jess/lock-sync/cold/Compact",
                0x9e844c4c,
                11,
                1363,
                6884,
                2,
                1,
                true,
                106287410,
                23500000,
                129787410
            ),
            pinned!(
                "jess/lock-sync/hot/Fixed",
                0x9e844c4c,
                11,
                1363,
                45088,
                3,
                2,
                true,
                136552200,
                0,
                136552200
            ),
            pinned!(
                "jess/lock-sync/hot/Compact",
                0x9e844c4c,
                11,
                1363,
                6884,
                2,
                1,
                true,
                106271730,
                0,
                106271730
            ),
            pinned!(
                "jess/thread-sched/cold/Fixed",
                0x9e844c4c,
                11,
                21,
                810,
                2,
                1,
                true,
                106018132,
                24651637,
                130669769
            ),
            pinned!(
                "jess/thread-sched/cold/Compact",
                0x9e844c4c,
                11,
                21,
                174,
                2,
                1,
                true,
                106250332,
                24651637,
                130901969
            ),
            pinned!(
                "jess/thread-sched/hot/Fixed",
                0x9e844c4c,
                11,
                21,
                810,
                2,
                1,
                true,
                105727057,
                24651637,
                130378694
            ),
            pinned!(
                "jess/thread-sched/hot/Compact",
                0x9e844c4c,
                11,
                21,
                174,
                2,
                1,
                true,
                105959257,
                24651637,
                130610894
            ),
        ],
    );
}

#[test]
fn jack_pinned() {
    check_workload(
        &ftjvm::workloads::jack::workload(),
        &[
            pinned!(
                "jack/lock-sync/cold/Fixed",
                0x540b480f,
                2,
                6158,
                263396,
                31,
                4,
                true,
                111484310,
                56069340,
                167553650
            ),
            pinned!(
                "jack/lock-sync/cold/Compact",
                0x540b480f,
                2,
                6158,
                61772,
                19,
                2,
                true,
                132041830,
                48209480,
                180251310
            ),
            pinned!(
                "jack/lock-sync/hot/Fixed",
                0x540b480f,
                2,
                6158,
                263396,
                31,
                4,
                true,
                111484310,
                0,
                111484310
            ),
            pinned!(
                "jack/lock-sync/hot/Compact",
                0x540b480f,
                2,
                6158,
                61772,
                19,
                2,
                true,
                132041830,
                0,
                132041830
            ),
            pinned!(
                "jack/thread-sched/cold/Fixed",
                0x540b480f,
                2,
                394,
                88560,
                21,
                2,
                true,
                123045057,
                56861912,
                179906969
            ),
            pinned!(
                "jack/thread-sched/cold/Compact",
                0x540b480f,
                2,
                394,
                31280,
                17,
                2,
                true,
                135569626,
                32520104,
                168089730
            ),
            pinned!(
                "jack/thread-sched/hot/Fixed",
                0x540b480f,
                2,
                394,
                88560,
                21,
                2,
                true,
                122729311,
                56861912,
                179591223
            ),
            pinned!(
                "jack/thread-sched/hot/Compact",
                0x540b480f,
                2,
                394,
                31280,
                17,
                2,
                true,
                135251055,
                32520104,
                167771159
            ),
        ],
    );
}

#[test]
fn compress_pinned() {
    check_workload(
        &ftjvm::workloads::compress::workload(),
        &[
            pinned!(
                "compress/lock-sync/cold/Fixed",
                0xf5d483ef,
                2,
                6,
                190,
                0,
                5,
                true,
                103154730,
                706136980,
                809291710
            ),
            pinned!(
                "compress/lock-sync/cold/Compact",
                0xf5d483ef,
                2,
                6,
                31,
                0,
                5,
                true,
                103154730,
                706136980,
                809291710
            ),
            pinned!(
                "compress/lock-sync/hot/Fixed",
                0xf5d483ef,
                2,
                6,
                190,
                0,
                5,
                true,
                103056730,
                0,
                103056730
            ),
            pinned!(
                "compress/lock-sync/hot/Compact",
                0xf5d483ef,
                2,
                6,
                31,
                0,
                5,
                true,
                103056730,
                0,
                103056730
            ),
            pinned!(
                "compress/thread-sched/cold/Fixed",
                0xf5d483ef,
                2,
                0,
                0,
                0,
                5,
                true,
                102087946,
                0,
                102087946
            ),
            pinned!(
                "compress/thread-sched/cold/Compact",
                0xf5d483ef,
                2,
                0,
                0,
                0,
                5,
                true,
                102087946,
                0,
                102087946
            ),
            pinned!(
                "compress/thread-sched/hot/Fixed",
                0xf5d483ef,
                2,
                0,
                0,
                0,
                6,
                true,
                150033857,
                0,
                150033857
            ),
            pinned!(
                "compress/thread-sched/hot/Compact",
                0xf5d483ef,
                2,
                0,
                0,
                0,
                6,
                true,
                150033857,
                0,
                150033857
            ),
        ],
    );
}

#[test]
fn db_pinned() {
    check_workload(
        &ftjvm::workloads::db::workload(),
        &[
            pinned!(
                "db/lock-sync/cold/Fixed",
                0x955d550f,
                7,
                17718,
                584489,
                37,
                9,
                true,
                105527230,
                128733910,
                234261140
            ),
            pinned!(
                "db/lock-sync/cold/Compact",
                0x955d550f,
                7,
                17718,
                88669,
                6,
                3,
                true,
                112196050,
                110623520,
                222819570
            ),
            pinned!(
                "db/lock-sync/hot/Fixed",
                0x955d550f,
                7,
                17718,
                584489,
                37,
                9,
                true,
                105527230,
                0,
                105527230
            ),
            pinned!(
                "db/lock-sync/hot/Compact",
                0x955d550f,
                7,
                17718,
                88669,
                6,
                3,
                true,
                112172340,
                0,
                112172340
            ),
            pinned!(
                "db/thread-sched/cold/Fixed",
                0x955d550f,
                7,
                31,
                1210,
                2,
                3,
                true,
                116136681,
                112629671,
                228766352
            ),
            pinned!(
                "db/thread-sched/cold/Compact",
                0x955d550f,
                7,
                31,
                269,
                2,
                3,
                true,
                116676121,
                112629671,
                229305792
            ),
            pinned!(
                "db/thread-sched/hot/Fixed",
                0x955d550f,
                7,
                31,
                1210,
                2,
                3,
                true,
                115525613,
                112629671,
                228155284
            ),
            pinned!(
                "db/thread-sched/hot/Compact",
                0x955d550f,
                7,
                31,
                269,
                2,
                3,
                true,
                116049517,
                112629671,
                228679188
            ),
        ],
    );
}

#[test]
fn mpegaudio_pinned() {
    check_workload(
        &ftjvm::workloads::mpegaudio::workload(),
        &[
            pinned!(
                "mpegaudio/lock-sync/cold/Fixed",
                0xf6f52a22,
                1,
                9,
                310,
                0,
                3,
                true,
                126503650,
                416225020,
                542728670
            ),
            pinned!(
                "mpegaudio/lock-sync/cold/Compact",
                0xf6f52a22,
                1,
                9,
                65,
                0,
                3,
                true,
                126503650,
                416225020,
                542728670
            ),
            pinned!(
                "mpegaudio/lock-sync/hot/Fixed",
                0xf6f52a22,
                1,
                9,
                310,
                0,
                3,
                true,
                126530850,
                0,
                126530850
            ),
            pinned!(
                "mpegaudio/lock-sync/hot/Compact",
                0xf6f52a22,
                1,
                9,
                65,
                0,
                3,
                true,
                126530850,
                0,
                126530850
            ),
            pinned!(
                "mpegaudio/thread-sched/cold/Fixed",
                0xf6f52a22,
                1,
                3,
                120,
                0,
                3,
                true,
                126025218,
                0,
                126025218
            ),
            pinned!(
                "mpegaudio/thread-sched/cold/Compact",
                0xf6f52a22,
                1,
                3,
                36,
                0,
                3,
                true,
                126025218,
                0,
                126025218
            ),
            pinned!(
                "mpegaudio/thread-sched/hot/Fixed",
                0xf6f52a22,
                1,
                3,
                120,
                0,
                3,
                true,
                125030179,
                0,
                125030179
            ),
            pinned!(
                "mpegaudio/thread-sched/hot/Compact",
                0xf6f52a22,
                1,
                3,
                36,
                0,
                3,
                true,
                125030179,
                0,
                125030179
            ),
        ],
    );
}

#[test]
fn mtrt_pinned() {
    check_workload(
        &ftjvm::workloads::mtrt::workload(),
        &[
            pinned!(
                "mtrt/lock-sync/cold/Fixed",
                0xd3e8fde7,
                2,
                684,
                25293,
                2,
                4,
                true,
                123878580,
                161480610,
                285359190
            ),
            pinned!(
                "mtrt/lock-sync/cold/Compact",
                0xd3e8fde7,
                2,
                684,
                3448,
                1,
                4,
                true,
                138127220,
                161480610,
                299607830
            ),
            pinned!(
                "mtrt/lock-sync/hot/Fixed",
                0xd3e8fde7,
                2,
                684,
                25293,
                2,
                4,
                true,
                123878580,
                0,
                123878580
            ),
            pinned!(
                "mtrt/lock-sync/hot/Compact",
                0xd3e8fde7,
                2,
                684,
                3448,
                1,
                4,
                true,
                138127220,
                0,
                138127220
            ),
            pinned!(
                "mtrt/thread-sched/cold/Fixed",
                0xd3e8fde7,
                2,
                2587,
                149955,
                10,
                5,
                true,
                125243336,
                164991419,
                290234755
            ),
            pinned!(
                "mtrt/thread-sched/cold/Compact",
                0xd3e8fde7,
                2,
                2587,
                23339,
                2,
                4,
                true,
                133138005,
                164991419,
                298129424
            ),
            pinned!(
                "mtrt/thread-sched/hot/Fixed",
                0xd3e8fde7,
                2,
                2587,
                149955,
                10,
                5,
                true,
                123942864,
                3555,
                123946419
            ),
            pinned!(
                "mtrt/thread-sched/hot/Compact",
                0xd3e8fde7,
                2,
                2587,
                23339,
                2,
                4,
                true,
                131845469,
                3555,
                131849024
            ),
        ],
    );
}

// --- Random-fault-plan property: wrapper behavior preservation ------------
//
// For arbitrary fault plans there is no pre-captured digest; the property
// the wrappers must preserve is the drivers' contract itself: byte-equal
// console to the failure-free reference, exactly-once output, and
// run-to-run determinism (the same plan twice gives the same report).
mod prop {
    use super::*;
    use proptest::prelude::*;

    fn fault_strategy() -> impl Strategy<Value = FaultPlan> {
        prop_oneof![
            (1_000u64..2_000_000).prop_map(FaultPlan::AfterInstructions),
            (0u64..6).prop_map(FaultPlan::BeforeOutput),
            (0u64..6).prop_map(FaultPlan::AfterOutput),
            (0u64..12).prop_map(FaultPlan::AfterFlush),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]
        #[test]
        fn random_fault_plans_preserve_driver_contract(
            fault in fault_strategy(),
            hot in any::<bool>(),
            compact in any::<bool>(),
            ts in any::<bool>(),
        ) {
            let w = micro::file_journal(60);
            let mode = if ts { ReplicationMode::ThreadSched } else { ReplicationMode::LockSync };
            let codec = if compact { WireCodec::Compact } else { WireCodec::Fixed };
            let lag = if hot { LagBudget::Hot } else { LagBudget::Cold };
            let mk = |lag_budget, fault| FtConfig {
                mode, codec, lag_budget, fault, ..FtConfig::default()
            };
            let free = FtJvm::new(w.program.clone(), mk(LagBudget::Cold, FaultPlan::None))
                .run_replicated()
                .expect("failure-free reference");
            let run = || {
                FtJvm::new(w.program.clone(), mk(lag, fault))
                    .run_replicated()
                    .unwrap_or_else(|e| panic!("{mode} {codec:?} {lag} {fault:?}: {e}"))
            };
            let a = run();
            prop_assert_eq!(a.console(), free.console(), "console vs failure-free");
            prop_assert!(a.check_no_duplicate_outputs().is_ok(), "exactly-once");
            let b = run();
            prop_assert_eq!(digest(&a), digest(&b), "determinism across reruns");
        }
    }
}

/// Crash/reintegration equivalence: backup killed mid-stream, replacement
/// recruited via snapshot transfer, then the primary crashes — the full
/// checkpointed driver path. Fingerprint: console CRC plus the timeline
/// instants the driver decided (kill, degraded entry, re-integration) and
/// the final failover latency.
fn reintegration_digest() -> (u32, u64, u64, u64, u64, u64) {
    let w = micro::file_journal(200);
    let cfg = FtConfig {
        mode: ReplicationMode::ThreadSched,
        lag_budget: LagBudget::Hot,
        checkpoint_interval: Some(3),
        detector: FailureDetector::new(SimTime::from_millis(1), 2),
        ..FtConfig::default()
    };
    let report = FtJvm::new(w.program.clone(), cfg)
        .run_checkpointed(CheckpointPlan {
            fault: FaultPlan::BeforeOutput(120),
            kill_backup_after_units: Some(512),
            reintegrate: true,
        })
        .expect("reintegration case");
    assert!(report.reintegrated, "replacement standby must go live");
    assert!(report.pair.crashed, "late crash must fire");
    report.pair.check_no_duplicate_outputs().expect("exactly-once");
    let console = report.pair.console().join("\n");
    (
        ftjvm::replication::crc32c(console.as_bytes()),
        report.pair.console().len() as u64,
        report.backup_killed_at.expect("kill fired").as_nanos(),
        report.degraded_entered_at.expect("degraded").as_nanos(),
        report.reintegrated_at.expect("live").as_nanos(),
        report.pair.failover_latency.as_nanos(),
    )
}

#[test]
fn reintegration_case_pinned() {
    assert_eq!(reintegration_digest(), REINTEGRATION_PINNED, "checkpointed driver diverged");
}

const REINTEGRATION_PINNED: (u32, u64, u64, u64, u64, u64) =
    (0x105b2e99, 1, 11073168, 13073168, 17216009, 1390846);
