//! Adversarial replication channel: every SPEC JVM98 analog must produce
//! byte-identical output — with exactly-once semantics — when the log
//! travels over a lossy, duplicating, corrupting, reordering link, with
//! and without a mid-run primary crash (gapped-log promotion).
//!
//! The reference in every case is the same workload's *fault-free* run:
//! the reliability sublayer (sequence numbers + CRC32C + ack/nack +
//! retransmission) must make the adversarial link observationally
//! indistinguishable from the perfect FIFO channel.

use ftjvm::netsim::{FaultPlan, SimTime, WireCodec};
use ftjvm::workloads::{self, Workload};
use ftjvm::{FtConfig, FtJvm, LagBudget, NetFaultPlan, ReplicationMode};
use proptest::prelude::*;

/// A plan mixing every fault class: `drop` loss plus duplication,
/// corruption, and reorder jitter.
fn mixed_plan(seed: u64, drop: f64) -> NetFaultPlan {
    NetFaultPlan {
        seed,
        drop,
        duplicate: 0.05,
        corrupt: 0.02,
        reorder: 0.10,
        jitter: SimTime::from_micros(300),
        ..NetFaultPlan::default()
    }
}

fn run_console(w: &Workload, cfg: FtConfig) -> Vec<String> {
    let crashes = !matches!(cfg.fault, FaultPlan::None);
    let h = FtJvm::new(w.program.clone(), cfg);
    let report = if crashes { h.run_with_failure() } else { h.run_replicated() }
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    assert_eq!(report.crashed, crashes, "{}: fault plan should fire iff armed", w.name);
    report
        .check_no_duplicate_outputs()
        .unwrap_or_else(|id| panic!("{}: duplicate output {id}", w.name));
    report.console()
}

/// One workload, one technique/codec pairing: fault-free reference vs
/// (a) a cold backup over a 20%-loss adversarial link, and (b) a hot
/// standby over a 10%-loss link whose primary crashes mid-run — the
/// promotion path that discards frames buffered beyond an unresolved gap
/// and replays only the longest verified frame prefix.
fn analog_survives(w: &Workload, mode: ReplicationMode, codec: WireCodec, crash: FaultPlan) {
    let base = FtConfig { mode, codec, ..FtConfig::default() };
    let free = run_console(w, base.clone());

    let heavy = FtConfig { net_fault: mixed_plan(0xD5, 0.20), ..base.clone() };
    assert_eq!(run_console(w, heavy), free, "{} {mode} {codec}: 20% loss, cold", w.name);

    let crashed = FtConfig {
        lag_budget: LagBudget::Hot,
        fault: crash,
        net_fault: mixed_plan(0x7E, 0.10),
        ..base
    };
    assert_eq!(run_console(w, crashed), free, "{} {mode} {codec}: crash under loss", w.name);
}

/// The six SPEC analogs, alternating technique and codec so the sweep
/// covers all four pairings without quadrupling its runtime.
macro_rules! analog_case {
    ($name:ident, $builder:path, $mode:ident, $codec:ident, $crash:expr) => {
        #[test]
        fn $name() {
            analog_survives(&$builder(), ReplicationMode::$mode, WireCodec::$codec, $crash);
        }
    };
}

analog_case!(
    jess_survives_adversarial_link,
    workloads::jess::workload,
    LockSync,
    Fixed,
    FaultPlan::AfterInstructions(300_000)
);
analog_case!(
    jack_survives_adversarial_link,
    workloads::jack::workload,
    ThreadSched,
    Compact,
    FaultPlan::AfterInstructions(400_000)
);
analog_case!(
    compress_survives_adversarial_link,
    workloads::compress::workload,
    LockSync,
    Compact,
    FaultPlan::AfterInstructions(10_000)
);
analog_case!(
    db_survives_adversarial_link,
    workloads::db::workload,
    ThreadSched,
    Fixed,
    FaultPlan::AfterInstructions(800_000)
);
analog_case!(
    mpegaudio_survives_adversarial_link,
    workloads::mpegaudio::workload,
    LockSync,
    Fixed,
    FaultPlan::AfterInstructions(1_000_000)
);
analog_case!(
    mtrt_survives_adversarial_link,
    workloads::mtrt::workload,
    ThreadSched,
    Compact,
    FaultPlan::BeforeOutput(0)
);

/// A transient partition (a contiguous window of dropped attempts) plus
/// pinned single-attempt faults: the sublayer must ride out the outage via
/// retransmission and still match the fault-free run.
#[test]
fn partition_window_and_pinned_faults_recovered() {
    let w = workloads::micro::sync_counter(3, 300);
    let free = run_console(&w, FtConfig::default());
    let plan = NetFaultPlan {
        seed: 3,
        drop_at: vec![0, 5],
        duplicate_at: vec![1, 6],
        corrupt_at: vec![2, 7],
        partitions: vec![(10, 30)],
        ..NetFaultPlan::default()
    };
    let cfg = FtConfig { net_fault: plan, ..FtConfig::default() };
    assert_eq!(run_console(&w, cfg), free);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Seeded random fault plans × both codecs × cold/hot standbys across
    /// three workload/technique pairings: output is always byte-identical
    /// to the fault-free run and exactly-once.
    ///
    /// The contended multithreaded micro runs under thread-schedule
    /// replication only: its main thread waits for the workers with an
    /// unsynchronized yield-spin, a data race the paper's
    /// properly-synchronized restriction excludes, so under lock-sync a
    /// starved hot standby would spin that loop without bound.
    #[test]
    fn random_plans_never_change_output(
        seed in any::<u64>(),
        drop_pm in 0u64..250,
        duplicate_pm in 0u64..150,
        corrupt_pm in 0u64..50,
        reorder_pm in 0u64..250,
        workload_sel in 0u8..3,
        compact in any::<bool>(),
        hot in any::<bool>(),
    ) {
        // Probabilities arrive as integer per-mille so the vendored
        // proptest shim (integer ranges only) can generate them.
        let (drop, duplicate, corrupt, reorder) = (
            drop_pm as f64 / 1000.0,
            duplicate_pm as f64 / 1000.0,
            corrupt_pm as f64 / 1000.0,
            reorder_pm as f64 / 1000.0,
        );
        let (w, mode) = match workload_sel {
            0 => (workloads::micro::sync_counter(2, 120), ReplicationMode::ThreadSched),
            1 => (workloads::micro::file_journal(8), ReplicationMode::LockSync),
            _ => (workloads::micro::nd_natives(60), ReplicationMode::LockSync),
        };
        let codec = if compact { WireCodec::Compact } else { WireCodec::Fixed };
        let base = FtConfig { mode, codec, ..FtConfig::default() };
        let free = run_console(&w, base.clone());
        let cfg = FtConfig {
            lag_budget: if hot { LagBudget::Hot } else { LagBudget::Cold },
            net_fault: NetFaultPlan {
                seed,
                drop,
                duplicate,
                corrupt,
                reorder,
                jitter: SimTime::from_micros(250),
                ..NetFaultPlan::default()
            },
            ..base
        };
        prop_assert_eq!(run_console(&w, cfg), free);
    }
}
