//! Epoch-checkpoint crashpoint sweeps: with `checkpoint_interval` set the
//! pair must (a) stay byte-identical to the uncheckpointed run while
//! bounding retained-log memory to one epoch, (b) survive a primary crash
//! at *every* flush boundary, (c) survive a backup crash — degraded mode,
//! replacement recruitment over state transfer, and a *second* crash of
//! the primary afterwards — with exactly-once, byte-identical output,
//! including over a 20%-loss adversarial link.

use ftjvm::netsim::{FailureDetector, FaultPlan, SimTime, WireCodec};
use ftjvm::workloads::{micro, Workload};
use ftjvm::{
    CheckpointPlan, FtConfig, FtJvm, GroupConfig, LagBudget, NetFaultPlan, ReplicationMode,
};

/// A plan mixing every fault class: `drop` loss plus duplication,
/// corruption, and reorder jitter (same shape as `tests/net_fault.rs`).
fn mixed_plan(seed: u64, drop: f64) -> NetFaultPlan {
    NetFaultPlan {
        seed,
        drop,
        duplicate: 0.05,
        corrupt: 0.02,
        reorder: 0.10,
        jitter: SimTime::from_micros(300),
        ..NetFaultPlan::default()
    }
}

fn base_cfg(mode: ReplicationMode) -> FtConfig {
    FtConfig { mode, ..FtConfig::default() }
}

/// Checkpointed-pair config: epochs every `interval` flushes, and a
/// failure detector fast enough (1 ms × 2 missed) that backup death is
/// declared well within a micro workload's few-millisecond run.
fn ckpt_cfg(mode: ReplicationMode, interval: u64) -> FtConfig {
    FtConfig {
        lag_budget: LagBudget::Hot,
        checkpoint_interval: Some(interval),
        detector: FailureDetector::new(SimTime::from_millis(1), 2),
        ..base_cfg(mode)
    }
}

/// The failure-free reference console (cold pair, default config).
fn free_console(w: &Workload, mode: ReplicationMode) -> Vec<String> {
    FtJvm::new(w.program.clone(), base_cfg(mode))
        .run_replicated()
        .unwrap_or_else(|e| panic!("{} {mode} free: {e}", w.name))
        .console()
}

// --- (a) failure-free equivalence + bounded log memory --------------------

#[test]
fn checkpointed_hot_pair_matches_plain_and_bounds_suffix() {
    let w = micro::file_journal(200);
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let free = free_console(&w, mode);

        let run = |interval: u64| {
            FtJvm::new(
                w.program.clone(),
                FtConfig {
                    lag_budget: LagBudget::Hot,
                    checkpoint_interval: Some(interval),
                    ..base_cfg(mode)
                },
            )
            .run_replicated()
            .unwrap_or_else(|e| panic!("{} {mode} interval {interval}: {e}", w.name))
        };

        // Epochs every 4 flushes vs. an interval so large no cut ever
        // happens (the retained suffix then grows to the whole log).
        let bounded = run(4);
        let unbounded = run(u64::MAX);

        assert_eq!(bounded.console(), free, "{mode}: checkpointed console");
        assert_eq!(unbounded.console(), free, "{mode}: uncut console");
        bounded.check_no_duplicate_outputs().expect("exactly-once");

        let s = &bounded.primary_stats;
        assert!(s.epochs_cut >= 3, "{mode}: expected several epoch cuts, got {}", s.epochs_cut);
        assert!(s.epochs_acked >= 1, "{mode}: backup acked no epochs");
        assert_eq!(unbounded.primary_stats.epochs_cut, 0, "{mode}: uncut run must not cut");
        // The one-epoch bound: truncation keeps the retained suffix far
        // below the whole-log peak the uncut run accumulates.
        assert!(
            s.peak_suffix_frames * 2 <= unbounded.primary_stats.peak_suffix_frames,
            "{mode}: suffix not bounded: {} vs uncut {}",
            s.peak_suffix_frames,
            unbounded.primary_stats.peak_suffix_frames
        );
        assert!(
            s.peak_suffix_bytes * 2 <= unbounded.primary_stats.peak_suffix_bytes,
            "{mode}: suffix bytes not bounded: {} vs uncut {}",
            s.peak_suffix_bytes,
            unbounded.primary_stats.peak_suffix_bytes
        );
    }
}

// --- (b) primary crash at every flush boundary ----------------------------

fn flush_boundary_sweep(w: &Workload, base: FtConfig) {
    let mode = base.mode;
    let free = free_console(w, mode);
    let mk = |fault| FtConfig { fault, ..base.clone() };
    // The reference run tells us how many flush boundaries exist.
    let flushes = FtJvm::new(w.program.clone(), mk(FaultPlan::None))
        .run_replicated()
        .unwrap_or_else(|e| panic!("{} {mode} reference: {e}", w.name))
        .primary_stats
        .flushes;
    assert!(flushes >= 4, "{}: workload too small for a flush sweep", w.name);
    // Kill the primary at every flush boundary (sampled down to ~16 cases
    // for very chatty workloads; always including the first and last).
    let step = (flushes / 16).max(1);
    let mut boundaries: Vec<u64> = (0..flushes).step_by(step as usize).collect();
    boundaries.push(flushes - 1);
    for n in boundaries {
        let report = FtJvm::new(w.program.clone(), mk(FaultPlan::AfterFlush(n)))
            .run_with_failure()
            .unwrap_or_else(|e| panic!("{} {mode} AfterFlush({n}): {e}", w.name));
        assert!(report.crashed, "{} {mode} AfterFlush({n}) must fire", w.name);
        assert_eq!(report.console(), free, "{} {mode} AfterFlush({n})", w.name);
        report
            .check_no_duplicate_outputs()
            .unwrap_or_else(|id| panic!("{} {mode} AfterFlush({n}): duplicate {id}", w.name));
    }
}

#[test]
fn primary_crash_at_every_flush_boundary_locksync() {
    flush_boundary_sweep(&micro::file_journal(24), ckpt_cfg(ReplicationMode::LockSync, 3));
}

#[test]
fn primary_crash_at_every_flush_boundary_threadsched() {
    // `sync_counter` commits a single output at the end, so flushing is
    // driven by the byte threshold: shrink it — and the scheduling
    // quantum, to multiply context switches — so the sched-record stream
    // crosses many flush boundaries.
    let mut cfg = FtConfig { flush_threshold: 128, ..ckpt_cfg(ReplicationMode::ThreadSched, 3) };
    cfg.vm.quantum = 60;
    cfg.vm.quantum_jitter = 30;
    flush_boundary_sweep(&micro::sync_counter(3, 80), cfg);
}

// --- (c) backup crash, degraded mode, re-integration ----------------------

/// A late primary crash: just before the final output commit, so the
/// replacement standby must already be live to preserve the output.
fn late_crash(w: &Workload, mode: ReplicationMode) -> FaultPlan {
    let commits = FtJvm::new(w.program.clone(), base_cfg(mode))
        .run_replicated()
        .unwrap_or_else(|e| panic!("{} {mode} probe: {e}", w.name))
        .primary_stats
        .output_commits;
    FaultPlan::BeforeOutput(commits.saturating_sub(1))
}

#[test]
fn backup_death_degrades_but_completes() {
    let w = micro::file_journal(200);
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let free = free_console(&w, mode);
        let report = FtJvm::new(w.program.clone(), ckpt_cfg(mode, 3))
            .run_checkpointed(CheckpointPlan {
                fault: FaultPlan::None,
                kill_backup_after_units: Some(512),
                reintegrate: false,
            })
            .unwrap_or_else(|e| panic!("{} {mode} degraded: {e}", w.name));
        assert!(report.backup_killed_at.is_some(), "{mode}: kill never fired");
        assert!(!report.reintegrated, "{mode}: no replacement was requested");
        assert!(!report.pair.crashed, "{mode}: primary must survive alone");
        assert_eq!(report.pair.console(), free, "{mode}: degraded console");
        report.pair.check_no_duplicate_outputs().expect("exactly-once");
        assert!(
            report.degraded_entered_at.is_some(),
            "{mode}: detector never declared the backup dead"
        );
        assert!(
            report.pair.primary_stats.degraded_outputs > 0,
            "{mode}: expected unacknowledged output commits while degraded"
        );
    }
}

fn reintegrate_then_crash(w: &Workload, mode: ReplicationMode, net: NetFaultPlan) {
    let free = free_console(w, mode);
    let cfg = FtConfig { net_fault: net, ..ckpt_cfg(mode, 3) };
    let report = FtJvm::new(w.program.clone(), cfg)
        .run_checkpointed(CheckpointPlan {
            fault: late_crash(w, mode),
            kill_backup_after_units: Some(512),
            reintegrate: true,
        })
        .unwrap_or_else(|e| panic!("{} {mode} reintegrate: {e}", w.name));
    assert!(report.backup_killed_at.is_some(), "{mode}: kill never fired");
    assert!(
        report.reintegrated,
        "{mode}: replacement standby never went live (degraded at {:?})",
        report.degraded_entered_at
    );
    assert!(report.pair.crashed, "{mode}: late primary crash must fire");
    assert_eq!(report.pair.console(), free, "{mode}: second-failover console");
    report
        .pair
        .check_no_duplicate_outputs()
        .unwrap_or_else(|id| panic!("{mode}: duplicate output {id}"));
    assert!(report.reintegration_latency().is_some(), "{mode}: no latency measured");
    assert!(report.degraded_window().is_some(), "{mode}: no degraded window measured");
}

#[test]
fn backup_crash_then_reintegration_then_primary_crash() {
    let w = micro::file_journal(200);
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        reintegrate_then_crash(&w, mode, NetFaultPlan::default());
    }
}

/// The acceptance scenario: backup killed mid-stream, replacement
/// recruited over a 20%-loss/duplicating/corrupting/reordering link,
/// then the primary crashes — output still exactly-once, byte-identical.
#[test]
fn reintegration_survives_lossy_link_then_primary_crash() {
    let w = micro::file_journal(200);
    for (mode, seed) in
        [(ReplicationMode::LockSync, 0xA11CE), (ReplicationMode::ThreadSched, 0xB0B)]
    {
        reintegrate_then_crash(&w, mode, mixed_plan(seed, 0.20));
    }
}

/// Kill the backup at a spread of points; wherever the kill lands the run
/// must stay exactly-once, and whenever the replacement went live before
/// the late crash the console must match the failure-free reference.
#[test]
fn backup_kill_sweep_with_reintegration() {
    let w = micro::file_journal(200);
    let mode = ReplicationMode::LockSync;
    let free = free_console(&w, mode);
    let fault = late_crash(&w, mode);
    let mut full_path_cases = 0;
    for kill in [256u64, 512, 768, 1_024, 1_536] {
        let report = FtJvm::new(w.program.clone(), ckpt_cfg(mode, 3))
            .run_checkpointed(CheckpointPlan {
                fault,
                kill_backup_after_units: Some(kill),
                reintegrate: true,
            })
            .unwrap_or_else(|e| panic!("kill@{kill}: {e}"));
        report
            .pair
            .check_no_duplicate_outputs()
            .unwrap_or_else(|id| panic!("kill@{kill}: duplicate output {id}"));
        if report.reintegrated && report.pair.crashed {
            assert_eq!(report.pair.console(), free, "kill@{kill}");
            full_path_cases += 1;
        }
    }
    assert!(full_path_cases >= 1, "no kill point exercised the full kill→reintegrate→crash path");
}

// --- cold pairs: bounded store + snapshot-based recovery ------------------

#[test]
fn cold_checkpointed_bounds_store_and_recovers_from_snapshot() {
    let w = micro::file_journal(200);
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let free = free_console(&w, mode);
        let run = |interval: Option<u64>, fault: FaultPlan| {
            let crashes = fault.is_armed();
            let cfg = FtConfig {
                lag_budget: LagBudget::Cold,
                checkpoint_interval: interval,
                fault,
                ..base_cfg(mode)
            };
            let h = FtJvm::new(w.program.clone(), cfg);
            if crashes { h.run_with_failure() } else { h.run_replicated() }
                .unwrap_or_else(|e| panic!("{} {mode} cold: {e}", w.name))
        };

        // Failure-free: byte-identical to the uncheckpointed cold pair.
        let quiet = run(Some(3), FaultPlan::None);
        assert_eq!(quiet.console(), free, "{mode}: cold checkpointed console");
        assert!(quiet.primary_stats.epochs_cut >= 3, "{mode}: cold pair never cut");

        // Crashed: the checkpointed store holds one epoch, not the whole
        // log, and recovery restores the snapshot instead of replaying
        // from instruction zero.
        let fault = late_crash(&w, mode);
        let bounded = run(Some(3), fault);
        let unbounded = run(Some(u64::MAX), fault);
        let classic = run(None, fault);
        for (label, r) in [("bounded", &bounded), ("uncut", &unbounded), ("classic", &classic)] {
            assert!(r.crashed, "{mode} {label}: fault must fire");
            assert_eq!(r.console(), free, "{mode} {label}: recovered console");
            r.check_no_duplicate_outputs()
                .unwrap_or_else(|id| panic!("{mode} {label}: duplicate {id}"));
        }
        let peak = |r: &ftjvm::PairReport| {
            r.backup_stats.as_ref().expect("backup took over").peak_backup_pending
        };
        assert!(
            peak(&bounded) * 2 <= peak(&unbounded),
            "{mode}: store not bounded: {} vs uncut {}",
            peak(&bounded),
            peak(&unbounded)
        );
        assert!(
            bounded.recovery_replay_time < classic.recovery_replay_time,
            "{mode}: snapshot recovery ({:?}) not faster than full replay ({:?})",
            bounded.recovery_replay_time,
            classic.recovery_replay_time
        );
    }
}

// --- (d) group primary kill at every epoch boundary ------------------------

/// Kills the acting primary of a 3-replica group right at every epoch
/// boundary the failure-free run cuts, asserting byte-identical
/// exactly-once output from the last survivor each time. Epoch
/// boundaries are the worst crashpoints for a group: the snapshot that
/// grounds the survivors' re-homing was taken *at* the kill instant.
fn group_epoch_boundary_sweep(w: &Workload, mode: ReplicationMode, codec: WireCodec) {
    let label = format!("{} {mode} {codec}", w.name);
    let free = FtJvm::new(w.program.clone(), FtConfig { codec, ..base_cfg(mode) })
        .run_replicated()
        .unwrap_or_else(|e| panic!("{label} free: {e}"))
        .console();
    let gcfg = || FtConfig { codec, ..ckpt_cfg(mode, 3) };
    // The failure-free reference run records the flush count at each
    // epoch cut — the exact boundaries the sweep targets.
    let probe = FtJvm::new(w.program.clone(), gcfg())
        .run_group(GroupConfig { size: 3, ..GroupConfig::default() })
        .unwrap_or_else(|e| panic!("{label} probe: {e}"));
    let boundaries = probe.reigns[0].stats.epoch_cut_flushes.clone();
    assert!(boundaries.len() >= 3, "{label}: too few epoch cuts for a sweep: {boundaries:?}");
    for f in boundaries {
        let kills = vec![FaultPlan::AfterFlush(f)];
        let report = FtJvm::new(w.program.clone(), gcfg())
            .run_group(GroupConfig { size: 3, kills, ..GroupConfig::default() })
            .unwrap_or_else(|e| panic!("{label} AfterFlush({f}): {e}"));
        assert!(report.completed, "{label} AfterFlush({f}): group must complete");
        assert_eq!(report.failovers.len(), 1, "{label} AfterFlush({f}): kill must fire");
        assert_eq!(report.console(), free, "{label} AfterFlush({f})");
        report
            .check_no_duplicate_outputs()
            .unwrap_or_else(|id| panic!("{label} AfterFlush({f}): duplicate {id}"));
    }
}

#[test]
fn group_primary_dies_at_every_epoch_boundary_locksync_fixed() {
    group_epoch_boundary_sweep(
        &micro::file_journal(150),
        ReplicationMode::LockSync,
        WireCodec::Fixed,
    );
}

#[test]
fn group_primary_dies_at_every_epoch_boundary_locksync_compact() {
    group_epoch_boundary_sweep(
        &micro::file_journal(150),
        ReplicationMode::LockSync,
        WireCodec::Compact,
    );
}

#[test]
fn group_primary_dies_at_every_epoch_boundary_threadsched_fixed() {
    group_epoch_boundary_sweep(
        &micro::file_journal(150),
        ReplicationMode::ThreadSched,
        WireCodec::Fixed,
    );
}

#[test]
fn group_primary_dies_at_every_epoch_boundary_threadsched_compact() {
    group_epoch_boundary_sweep(
        &micro::file_journal(150),
        ReplicationMode::ThreadSched,
        WireCodec::Compact,
    );
}

/// The compact delta/varint codec snapshots and restores its encoder
/// context across the cut, so the whole epoch machinery must hold under
/// it too.
#[test]
fn checkpointed_paths_hold_under_compact_codec() {
    let w = micro::file_journal(60);
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let free = FtJvm::new(
            w.program.clone(),
            FtConfig { mode, codec: WireCodec::Compact, ..FtConfig::default() },
        )
        .run_replicated()
        .unwrap_or_else(|e| panic!("{mode} compact free: {e}"))
        .console();
        for lag in [LagBudget::Cold, LagBudget::Hot] {
            let cfg = FtConfig {
                mode,
                codec: WireCodec::Compact,
                lag_budget: lag,
                checkpoint_interval: Some(3),
                fault: FaultPlan::BeforeOutput(30),
                ..FtConfig::default()
            };
            let report = FtJvm::new(w.program.clone(), cfg)
                .run_with_failure()
                .unwrap_or_else(|e| panic!("{mode} compact {lag:?}: {e}"));
            assert!(report.crashed);
            assert_eq!(report.console(), free, "{mode} compact {lag:?}");
            report.check_no_duplicate_outputs().expect("exactly-once");
        }
    }
}
