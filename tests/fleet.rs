//! Fleet-scale invariants: exactly-once output on every surviving pair,
//! standalone reproducibility of any pair from `(fleet_seed, pair_id)`,
//! and run-to-run determinism of the whole fleet.

use ftjvm::netsim::SimTime;
use ftjvm::replication::fleet::{
    journal_program, run_fleet, split_seed, FleetConfig, PairPlan, RouterMode,
};
use ftjvm::replication::ReplicaRuntime;
use ftjvm::NativeRegistry;

/// A small fleet with every fault class armed: independent crashes,
/// independent backup kills, and a correlated rack partition. Every pair
/// with a surviving authority must produce the exact expected console
/// with no duplicated outputs.
#[test]
fn surviving_pairs_are_exactly_once_and_byte_identical() {
    let cfg = FleetConfig {
        pairs: 48,
        racks: 6,
        crash_per_mille: 250,
        kill_per_mille: 150,
        partition_rack: Some(2),
        ..FleetConfig::default()
    };
    let report = run_fleet(&cfg).expect("fleet runs");
    assert_eq!(report.completed, cfg.pairs, "no pair-level fatal errors");
    assert_eq!(report.divergent, 0, "every survivor verified");
    assert!(report.outcomes.iter().all(|o| !o.survived || o.output_ok));
    // The partition actually did something: rack 2's backups were all
    // scheduled to die.
    let rack2 = report.outcomes.iter().filter(|o| o.rack == 2).count();
    let rack2_killed = report.outcomes.iter().filter(|o| o.rack == 2 && o.planned_kill).count();
    assert_eq!(rack2, rack2_killed, "every rack-2 pair had its backup killed");
    assert!(report.served_requests > 0);
}

/// Any single pair is reproducible from `(fleet_seed, pair_id)` alone:
/// derive its plan, run it standalone (no fleet, no shared trunk), and
/// its outcome matches what the fleet observed for that pair.
#[test]
fn pair_is_reproducible_standalone_from_seed_and_id() {
    // Shared capacity off so a standalone run sees identical timing.
    let cfg = FleetConfig {
        pairs: 24,
        crash_per_mille: 300,
        kill_per_mille: 200,
        shared_per_byte: None,
        ..FleetConfig::default()
    };
    let report = run_fleet(&cfg).expect("fleet runs");
    let natives = NativeRegistry::with_builtins();
    let mut checked_crash = false;
    let mut checked_kill = false;
    for outcome in &report.outcomes {
        let plan = PairPlan::derive(&cfg, outcome.pair_id);
        let program = journal_program(plan.requests as i64).expect("program builds");
        let rt = ReplicaRuntime::new(program, natives.clone(), plan.ft_config(&cfg));
        let standalone = rt.run_checkpointed(plan.checkpoint_plan(&cfg)).expect("standalone run");
        assert_eq!(standalone.pair.crashed, outcome.crashed, "pair {}", outcome.pair_id);
        assert_eq!(
            standalone.degraded_entered_at.is_some(),
            outcome.degraded,
            "pair {}",
            outcome.pair_id
        );
        assert_eq!(standalone.reintegrated, outcome.reintegrated, "pair {}", outcome.pair_id);
        if outcome.survived {
            assert_eq!(
                standalone.pair.console(),
                plan.expected_console(),
                "pair {}",
                outcome.pair_id
            );
        }
        checked_crash |= outcome.crashed;
        checked_kill |= outcome.planned_kill;
    }
    assert!(checked_crash, "at least one pair crashed (else the test is vacuous)");
    assert!(checked_kill, "at least one backup was killed");
}

/// The same configuration produces the same report, nanosecond for
/// nanosecond — including trunk contention and router latencies.
#[test]
fn fleet_rerun_is_deterministic() {
    let cfg = FleetConfig {
        pairs: 16,
        crash_per_mille: 200,
        kill_per_mille: 150,
        router: RouterMode::Closed { think: SimTime::from_micros(250) },
        ..FleetConfig::default()
    };
    let a = run_fleet(&cfg).expect("first run");
    let b = run_fleet(&cfg).expect("second run");
    assert_eq!(a.commit_p50, b.commit_p50);
    assert_eq!(a.commit_p99, b.commit_p99);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.served_requests, b.served_requests);
    assert_eq!(a.backlog_peak, b.backlog_peak);
    assert_eq!(a.shared.map(|s| s.queue_total), b.shared.map(|s| s.queue_total));
    for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
        assert_eq!(x.crashed, y.crashed);
        assert_eq!(x.served, y.served);
        assert_eq!(x.failover_latency, y.failover_latency);
    }
}

/// Seed splitting: different fleet seeds reshuffle the fault plan; the
/// same seed pins it.
#[test]
fn fleet_seed_controls_fault_plan() {
    let base = FleetConfig { pairs: 32, ..FleetConfig::default() };
    let other = FleetConfig { seed: 0xDEAD_BEEF, ..base.clone() };
    let plans_a: Vec<PairPlan> = (0..32).map(|i| PairPlan::derive(&base, i)).collect();
    let plans_b: Vec<PairPlan> = (0..32).map(|i| PairPlan::derive(&other, i)).collect();
    assert!(
        plans_a.iter().zip(&plans_b).any(|(a, b)| a.requests != b.requests || a.fault != b.fault),
        "a different fleet seed must change at least one pair's plan"
    );
    assert_ne!(split_seed(1, 0, 0), split_seed(2, 0, 0));
}
