//! Cross-crate integration: every SPEC JVM98 analog survives a mid-run
//! primary crash under both replication techniques with output equal to
//! its own failure-free run.

use ftjvm::netsim::{FaultPlan, WireCodec};
use ftjvm::workloads;
use ftjvm::{FtConfig, FtJvm, ReplicationMode};

fn failover_matches_free_with(
    w: &workloads::Workload,
    mode: ReplicationMode,
    codec: WireCodec,
    fault: FaultPlan,
) {
    let mk = |fault| FtConfig { mode, codec, fault, ..FtConfig::default() };
    let free = FtJvm::new(w.program.clone(), mk(FaultPlan::None))
        .run_replicated()
        .unwrap_or_else(|e| panic!("{} {mode} {codec} free: {e}", w.name));
    let failed = FtJvm::new(w.program.clone(), mk(fault))
        .run_with_failure()
        .unwrap_or_else(|e| panic!("{} {mode} {codec} {fault:?}: {e}", w.name));
    assert!(failed.crashed, "{} {mode} {codec} {fault:?} should crash", w.name);
    assert_eq!(failed.console(), free.console(), "{} {mode} {codec} {fault:?}", w.name);
    failed
        .check_no_duplicate_outputs()
        .unwrap_or_else(|id| panic!("{} {mode} {codec}: duplicate output {id}", w.name));
}

fn failover_matches_free(w: &workloads::Workload, mode: ReplicationMode, fault: FaultPlan) {
    failover_matches_free_with(w, mode, WireCodec::Fixed, fault);
}

/// Single-threaded workloads produce identical consoles; mtrt (checksum is
/// interleaving-dependent through the modulus) is handled separately.
macro_rules! spec_case {
    ($name:ident, $builder:path, $fault:expr) => {
        #[test]
        fn $name() {
            let w = $builder();
            for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
                failover_matches_free(&w, mode, $fault);
            }
        }
    };
}

spec_case!(
    compress_failover_early,
    workloads::compress::workload,
    FaultPlan::AfterInstructions(10_000)
);
spec_case!(
    compress_failover_late,
    workloads::compress::workload,
    FaultPlan::AfterInstructions(2_000_000)
);
spec_case!(jess_failover, workloads::jess::workload, FaultPlan::AfterInstructions(300_000));
spec_case!(jack_failover, workloads::jack::workload, FaultPlan::AfterInstructions(400_000));
spec_case!(db_failover, workloads::db::workload, FaultPlan::AfterInstructions(800_000));
spec_case!(
    mpegaudio_failover,
    workloads::mpegaudio::workload,
    FaultPlan::AfterInstructions(1_000_000)
);
spec_case!(jess_uncertain_output, workloads::jess::workload, FaultPlan::BeforeOutput(2));
spec_case!(jack_after_output, workloads::jack::workload, FaultPlan::AfterOutput(0));
spec_case!(db_uncertain_output, workloads::db::workload, FaultPlan::BeforeOutput(1));

#[test]
fn mtrt_failover_both_modes() {
    // mtrt's checksum folds a modulus over a scheduling-dependent
    // accumulation order, so the reference must come from a *complete-log*
    // crash (BeforeOutput(0) commits — and therefore flushes — the whole
    // execution).
    let w = workloads::mtrt::workload();
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        failover_matches_free(&w, mode, FaultPlan::BeforeOutput(0));
    }
}

#[test]
fn compact_codec_spec_failover() {
    // The batched delta/varint codec must be transparent to failover on
    // real workloads: db (lock-heavy), jess (output-heavy) and mtrt
    // (multithreaded) under both techniques.
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let db = workloads::db::workload();
        failover_matches_free_with(
            &db,
            mode,
            WireCodec::Compact,
            FaultPlan::AfterInstructions(800_000),
        );
        failover_matches_free_with(&db, mode, WireCodec::Compact, FaultPlan::BeforeOutput(1));
        let jess = workloads::jess::workload();
        failover_matches_free_with(
            &jess,
            mode,
            WireCodec::Compact,
            FaultPlan::AfterInstructions(300_000),
        );
        let mtrt = workloads::mtrt::workload();
        failover_matches_free_with(&mtrt, mode, WireCodec::Compact, FaultPlan::BeforeOutput(0));
    }
}

#[test]
fn compact_codec_cuts_bytes_and_messages_on_db() {
    // The headline numbers of the compact codec (and this test pins the
    // acceptance floor): ≥40% fewer bytes logged and ≥5x fewer channel
    // messages than the fixed codec on db under lock-sync, with identical
    // record counts and console output.
    let w = workloads::db::workload();
    let mk = |codec| FtConfig { mode: ReplicationMode::LockSync, codec, ..FtConfig::default() };
    let fixed =
        FtJvm::new(w.program.clone(), mk(WireCodec::Fixed)).run_replicated().expect("fixed");
    let compact =
        FtJvm::new(w.program.clone(), mk(WireCodec::Compact)).run_replicated().expect("compact");
    assert_eq!(compact.console(), fixed.console());
    assert_eq!(compact.primary_stats.messages_logged(), fixed.primary_stats.messages_logged());
    assert!(
        (compact.primary_stats.bytes_logged as f64)
            <= 0.6 * fixed.primary_stats.bytes_logged as f64,
        "bytes_logged: compact {} vs fixed {}",
        compact.primary_stats.bytes_logged,
        fixed.primary_stats.bytes_logged
    );
    assert!(
        compact.channel.messages_sent * 5 <= fixed.channel.messages_sent,
        "messages: compact {} vs fixed {}",
        compact.channel.messages_sent,
        fixed.channel.messages_sent
    );
}

#[test]
fn file_workloads_leave_exact_stable_state() {
    let w = workloads::jack::workload();
    let mk = |fault| FtConfig { mode: ReplicationMode::LockSync, fault, ..FtConfig::default() };
    let free = FtJvm::new(w.program.clone(), mk(FaultPlan::None)).run_replicated().unwrap();
    let failed = FtJvm::new(w.program.clone(), mk(FaultPlan::AfterInstructions(200_000)))
        .run_with_failure()
        .unwrap();
    let f1 = free.world.borrow().file("grammar.jack").unwrap().to_vec();
    let f2 = failed.world.borrow().file("grammar.jack").unwrap().to_vec();
    assert_eq!(f1, f2, "grammar file identical after failover");
}

#[test]
fn replication_stats_match_between_free_and_crash_prefix() {
    // The crash run's primary stats must be a prefix-consistent subset of
    // the free run's (same seed => same trajectory until the crash).
    let w = workloads::jess::workload();
    let mk = |fault| FtConfig { mode: ReplicationMode::LockSync, fault, ..FtConfig::default() };
    let free = FtJvm::new(w.program.clone(), mk(FaultPlan::None)).run_replicated().unwrap();
    let failed = FtJvm::new(w.program.clone(), mk(FaultPlan::AfterInstructions(100_000)))
        .run_with_failure()
        .unwrap();
    assert!(failed.primary_stats.locks_acquired <= free.primary_stats.locks_acquired);
    assert!(failed.primary_stats.nm_intercepted <= free.primary_stats.nm_intercepted);
    assert!(failed.primary_stats.messages_logged() <= free.primary_stats.messages_logged());
}
