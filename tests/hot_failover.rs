//! Hot-standby co-simulation: every SPEC JVM98 analog survives a mid-run
//! primary crash with a *streaming* backup — promoted mid-run, replaying
//! only the unconsumed log suffix — with output equal to its own
//! failure-free run, under both replication techniques and both codecs.

use ftjvm::netsim::{FaultPlan, WireCodec};
use ftjvm::workloads;
use ftjvm::{FtConfig, FtJvm, LagBudget, ReplicationMode};

fn hot_failover_matches_free_with(
    w: &workloads::Workload,
    mode: ReplicationMode,
    codec: WireCodec,
    fault: FaultPlan,
) {
    let mk = |lag_budget, fault| FtConfig { mode, codec, lag_budget, fault, ..FtConfig::default() };
    // Reference: the cold failure-free run (the regression oracle).
    let free = FtJvm::new(w.program.clone(), mk(LagBudget::Cold, FaultPlan::None))
        .run_replicated()
        .unwrap_or_else(|e| panic!("{} {mode} {codec} free: {e}", w.name));
    let failed = FtJvm::new(w.program.clone(), mk(LagBudget::Hot, fault))
        .run_with_failure()
        .unwrap_or_else(|e| panic!("{} {mode} {codec} hot {fault:?}: {e}", w.name));
    assert!(failed.crashed, "{} {mode} {codec} hot {fault:?} should crash", w.name);
    assert_eq!(failed.console(), free.console(), "{} {mode} {codec} hot {fault:?}", w.name);
    failed
        .check_no_duplicate_outputs()
        .unwrap_or_else(|id| panic!("{} {mode} {codec} hot: duplicate output {id}", w.name));
}

fn hot_failover_matches_free(w: &workloads::Workload, mode: ReplicationMode, fault: FaultPlan) {
    hot_failover_matches_free_with(w, mode, WireCodec::Fixed, fault);
}

/// Same crash points as the cold sweep in `spec_failover.rs`, with a hot
/// standby instead.
macro_rules! hot_case {
    ($name:ident, $builder:path, $fault:expr) => {
        #[test]
        fn $name() {
            let w = $builder();
            for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
                hot_failover_matches_free(&w, mode, $fault);
            }
        }
    };
}

hot_case!(
    compress_hot_failover_early,
    workloads::compress::workload,
    FaultPlan::AfterInstructions(10_000)
);
hot_case!(
    compress_hot_failover_late,
    workloads::compress::workload,
    FaultPlan::AfterInstructions(2_000_000)
);
hot_case!(jess_hot_failover, workloads::jess::workload, FaultPlan::AfterInstructions(300_000));
hot_case!(jack_hot_failover, workloads::jack::workload, FaultPlan::AfterInstructions(400_000));
hot_case!(db_hot_failover, workloads::db::workload, FaultPlan::AfterInstructions(800_000));
hot_case!(
    mpegaudio_hot_failover,
    workloads::mpegaudio::workload,
    FaultPlan::AfterInstructions(1_000_000)
);
hot_case!(jess_hot_uncertain_output, workloads::jess::workload, FaultPlan::BeforeOutput(2));
hot_case!(jack_hot_after_output, workloads::jack::workload, FaultPlan::AfterOutput(0));
hot_case!(db_hot_uncertain_output, workloads::db::workload, FaultPlan::BeforeOutput(1));

#[test]
fn mtrt_hot_failover_both_modes() {
    // As in the cold sweep: mtrt's checksum is interleaving-dependent, so
    // the reference must come from a complete-log crash (BeforeOutput(0)
    // commits — and therefore flushes — the whole execution).
    let w = workloads::mtrt::workload();
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        hot_failover_matches_free(&w, mode, FaultPlan::BeforeOutput(0));
    }
}

#[test]
fn compact_codec_hot_failover() {
    // The batched delta/varint codec streams through the hot standby's
    // incremental decoder (one decoder per connection; delta context spans
    // frames), so the sweep must hold under it too.
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let db = workloads::db::workload();
        hot_failover_matches_free_with(
            &db,
            mode,
            WireCodec::Compact,
            FaultPlan::AfterInstructions(800_000),
        );
        hot_failover_matches_free_with(&db, mode, WireCodec::Compact, FaultPlan::BeforeOutput(1));
        let jess = workloads::jess::workload();
        hot_failover_matches_free_with(
            &jess,
            mode,
            WireCodec::Compact,
            FaultPlan::AfterInstructions(300_000),
        );
        let mtrt = workloads::mtrt::workload();
        hot_failover_matches_free_with(&mtrt, mode, WireCodec::Compact, FaultPlan::BeforeOutput(0));
    }
}

#[test]
fn hot_failure_free_matches_cold() {
    // Without a crash the hot standby replays the whole stream quietly
    // (every output suppressed: the primary performed them all); the
    // observable world must be identical to the cold run's.
    for (w, fault) in [
        (workloads::jess::workload(), FaultPlan::None),
        (workloads::db::workload(), FaultPlan::None),
    ] {
        let mk = |lag_budget| FtConfig {
            mode: ReplicationMode::LockSync,
            lag_budget,
            fault,
            ..FtConfig::default()
        };
        let cold =
            FtJvm::new(w.program.clone(), mk(LagBudget::Cold)).run_replicated().expect("cold");
        let hot = FtJvm::new(w.program.clone(), mk(LagBudget::Hot)).run_replicated().expect("hot");
        assert!(!hot.crashed, "{}", w.name);
        assert_eq!(hot.console(), cold.console(), "{}", w.name);
        assert!(hot.backup.is_some(), "{}: hot standby ran to completion", w.name);
        hot.check_no_duplicate_outputs()
            .unwrap_or_else(|id| panic!("{}: duplicate output {id}", w.name));
    }
}

#[test]
fn hot_failover_latency_beats_cold() {
    // The point of the hot standby: at promotion only the unconsumed log
    // suffix remains, so measured failover latency must be strictly less
    // than the cold backup's full-log replay on log-heavy workloads.
    for (w, fault) in [
        (workloads::db::workload(), FaultPlan::AfterInstructions(800_000)),
        (workloads::jack::workload(), FaultPlan::AfterInstructions(400_000)),
    ] {
        let mk = |lag_budget| FtConfig {
            mode: ReplicationMode::LockSync,
            lag_budget,
            fault,
            ..FtConfig::default()
        };
        let cold =
            FtJvm::new(w.program.clone(), mk(LagBudget::Cold)).run_with_failure().expect("cold");
        let hot =
            FtJvm::new(w.program.clone(), mk(LagBudget::Hot)).run_with_failure().expect("hot");
        assert_eq!(hot.console(), cold.console(), "{}", w.name);
        assert!(
            hot.failover_latency < cold.failover_latency,
            "{}: hot failover {:?} not below cold {:?}",
            w.name,
            hot.failover_latency,
            cold.failover_latency
        );
        assert!(
            hot.recovery_replay_time < cold.recovery_replay_time,
            "{}: hot suffix replay {:?} not below cold full replay {:?}",
            w.name,
            hot.recovery_replay_time,
            cold.recovery_replay_time
        );
    }
}
