//! Determinism of the parallel execution paths: a fleet scheduled across
//! N worker threads, a group fleet, and a promotion whose suffix decode
//! fans out across replay workers must all produce **byte-identical**
//! results for every thread count — parallelism may only change host
//! wall-clock time, never a simulated timestamp, counter, or output.

use ftjvm::netsim::{FaultPlan, SimTime, WireCodec};
use ftjvm::replication::fleet::{run_fleet, FleetConfig, FleetReport, RouterMode};
use ftjvm::workloads::{self, Workload};
use ftjvm::{FtConfig, FtJvm, LagBudget, ReplicationMode};
use proptest::prelude::*;

/// Everything observable about a fleet run except the pool stats (which
/// legitimately describe the thread layout): scalar counters, latency
/// percentiles, trunk stats, and the full per-pair outcome list.
fn digest(r: &FleetReport) -> String {
    format!(
        "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {:?} {:?}",
        r.pairs,
        r.completed,
        r.divergent,
        r.lost,
        r.failovers_absorbed,
        r.backups_killed,
        r.degraded_entries,
        r.reintegrated,
        r.served_requests,
        r.total_requests,
        r.backlog_peak,
        r.commit_p50,
        r.commit_p99,
        r.commit_max,
        r.makespan,
        r.peak_suffix_frames,
        r.shared,
        r.outcomes,
    )
}

fn run_digest(base: &FleetConfig, threads: usize) -> String {
    let cfg = FleetConfig { threads, ..base.clone() };
    let report = run_fleet(&cfg).expect("fleet runs");
    assert_eq!(report.pool.threads, threads.max(1).min(base.pairs as usize));
    digest(&report)
}

/// A pair fleet with every fault class armed, scheduled at 1, 2, 4, and
/// 8 threads: the reports must match to the last byte.
#[test]
fn fleet_reports_are_byte_identical_across_thread_counts() {
    let base = FleetConfig {
        pairs: 24,
        racks: 6,
        crash_per_mille: 300,
        kill_per_mille: 200,
        partition_rack: Some(1),
        ..FleetConfig::default()
    };
    let reference = run_digest(&base, 1);
    for threads in [2, 4, 8] {
        assert_eq!(run_digest(&base, threads), reference, "threads={threads}");
    }
}

/// Group slots (k-replica reigns with rank-ordered promotion) carry
/// per-moment timelines; those, too, must be thread-count-invariant.
#[test]
fn group_fleet_timelines_are_thread_count_invariant() {
    let base = FleetConfig {
        pairs: 6,
        racks: 3,
        crash_per_mille: 500,
        kill_per_mille: 0,
        group_size: Some(3),
        ..FleetConfig::default()
    };
    let reference = run_digest(&base, 1);
    for threads in [2, 4] {
        assert_eq!(run_digest(&base, threads), reference, "threads={threads}");
    }
}

/// An uncontended fleet (every pair on its own link) exercises the
/// no-trunk scheduling path.
#[test]
fn fleet_without_shared_trunk_is_thread_count_invariant() {
    let base = FleetConfig {
        pairs: 10,
        racks: 5,
        crash_per_mille: 250,
        kill_per_mille: 150,
        shared_per_byte: None,
        router: RouterMode::Closed { think: SimTime::from_micros(80) },
        ..FleetConfig::default()
    };
    let reference = run_digest(&base, 1);
    for threads in [3, 8] {
        assert_eq!(run_digest(&base, threads), reference, "threads={threads}");
    }
}

/// Snapshot-based promotion with the suffix decode fanned out across
/// replay workers: report, console, stats, and failover latencies all
/// equal the sequential decode, and both equal the failure-free console.
#[test]
fn promotion_is_replay_thread_invariant() {
    let cases: [(Workload, ReplicationMode); 3] = [
        (workloads::micro::sync_counter(2, 120), ReplicationMode::ThreadSched),
        (workloads::micro::file_journal(40), ReplicationMode::LockSync),
        (workloads::micro::nd_natives(60), ReplicationMode::LockSync),
    ];
    for (w, mode) in cases {
        for codec in [WireCodec::Fixed, WireCodec::Compact] {
            let base = FtConfig { mode, codec, ..FtConfig::default() };
            let free = FtJvm::new(w.program.clone(), base.clone())
                .run_replicated()
                .expect("failure-free run");
            let crashed = |replay_threads: usize| {
                let cfg = FtConfig {
                    lag_budget: LagBudget::Cold,
                    checkpoint_interval: Some(2),
                    fault: FaultPlan::AfterInstructions(
                        (free.primary.counters.instructions * 3 / 5).max(1),
                    ),
                    replay_threads,
                    ..base.clone()
                };
                FtJvm::new(w.program.clone(), cfg).run_with_failure().expect("crashed run")
            };
            let seq = crashed(1);
            assert!(seq.crashed, "{} {codec}: fault must fire", w.name);
            for threads in [2, 8] {
                let par = crashed(threads);
                assert_eq!(par.console(), seq.console(), "{} {codec}", w.name);
                assert_eq!(par.console(), free.console(), "{} {codec}", w.name);
                assert_eq!(
                    par.failover_latency, seq.failover_latency,
                    "{} {codec} threads={threads}",
                    w.name
                );
                assert_eq!(
                    par.recovery_replay_time, seq.recovery_replay_time,
                    "{} {codec} threads={threads}",
                    w.name
                );
                assert_eq!(
                    format!("{:?}", par.backup_stats),
                    format!("{:?}", seq.backup_stats),
                    "{} {codec} threads={threads}",
                    w.name
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// Random seed × fault mix × thread count: any fleet digest equals
    /// its single-threaded reference.
    #[test]
    fn random_fleets_are_thread_count_invariant(
        seed in any::<u64>(),
        crash_pm in 0u32..600,
        kill_pm in 0u32..400,
        threads in 2usize..9,
    ) {
        let base = FleetConfig {
            pairs: 6,
            racks: 3,
            seed,
            crash_per_mille: crash_pm,
            kill_per_mille: kill_pm,
            ..FleetConfig::default()
        };
        prop_assert_eq!(run_digest(&base, threads), run_digest(&base, 1));
    }
}
