//! Golden-log equivalence of the execution engines: the pre-decoded
//! block-dispatch interpreter — and the fused superinstruction +
//! quickening + inline-cache tier on top of it — must be
//! **observationally invisible** to the replication layer. Across all six
//! SPEC JVM98 analogs, both replication techniques, and both wire codecs,
//! the fused engine, the plain decoded engine, and the per-op `match`
//! engine must ship byte-identical log frames and produce identical
//! console output; varying the block cap may shift simulated-time
//! bookkeeping (heartbeat instants) but never the logged record sequence
//! or the outputs (at `cap=1` no superinstruction ever fits the budget,
//! so cap-invariance doubles as the fusion-off equivalence proof); and a
//! snapshot cut that lands *inside* a fused region must restore and
//! finish bit-for-bit under every engine.

use ftjvm::netsim::{FaultPlan, SimTime, WireCodec};
use ftjvm::replication::codec::decode_frames;
use ftjvm::replication::records::LoggedResult;
use ftjvm::replication::Record;
use ftjvm::vm::coordinator::NoopCoordinator;
use ftjvm::vm::{DispatchEngine, SimEnv, SliceOutcome, Vm, World};
use ftjvm::workloads::{self, Workload};
use ftjvm::{FtConfig, FtJvm, NativeRegistry, ReplicationMode, VmConfig};

/// Runs the failure-free primary and returns its raw log frames plus the
/// console output it committed.
fn primary_artifacts(w: &Workload, cfg: FtConfig) -> (Vec<Vec<u8>>, Vec<String>) {
    let harness = FtJvm::new(w.program.clone(), cfg);
    let world = World::shared();
    let (_, frames, _, _) = harness
        .runtime()
        .run_primary_to_log(&world, FaultPlan::None)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let frames = frames.iter().map(|f| f.to_vec()).collect();
    let texts = world.borrow().console_texts();
    (frames, texts)
}

/// All three engines, both techniques, both codecs, every SPEC analog:
/// neither the decoded engine nor the fused superinstruction tier may
/// change a single byte of the replication log or of the committed
/// output relative to the per-op `match` baseline.
#[test]
fn fused_decoded_and_match_logs_are_byte_identical() {
    for w in workloads::spec_suite() {
        for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
            for codec in [WireCodec::Fixed, WireCodec::Compact] {
                let cfg = |engine| {
                    let mut cfg = FtConfig { mode, codec, ..FtConfig::default() };
                    cfg.vm.engine = engine;
                    cfg
                };
                let (mat_frames, mat_out) = primary_artifacts(&w, cfg(DispatchEngine::Match));
                for engine in [DispatchEngine::Fused, DispatchEngine::Decoded] {
                    let (frames, out) = primary_artifacts(&w, cfg(engine));
                    assert_eq!(
                        out, mat_out,
                        "{} {mode} {codec} {engine:?}: outputs differ",
                        w.name
                    );
                    assert_eq!(
                        frames.len(),
                        mat_frames.len(),
                        "{} {mode} {codec} {engine:?}: frame counts differ",
                        w.name
                    );
                    for (i, (a, b)) in frames.iter().zip(&mat_frames).enumerate() {
                        assert_eq!(a, b, "{} {mode} {codec} {engine:?}: frame {i} differs", w.name);
                    }
                }
            }
        }
    }
}

/// The logged record sequence, with time-driven heartbeats stripped.
/// Heartbeats ride on simulated time, which legitimately shifts when the
/// consult cadence (and so the Misc accounting) changes with the cap.
fn logged_records(w: &Workload, cfg: FtConfig) -> (Vec<Record>, Vec<String>) {
    let harness = FtJvm::new(w.program.clone(), cfg);
    let world = World::shared();
    let (_, frames, _, _) = harness
        .runtime()
        .run_primary_to_log(&world, FaultPlan::None)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let texts = world.borrow().console_texts();
    let records = decode_frames(frames)
        .unwrap_or_else(|e| panic!("{}: own log failed to decode: {e}", w.name))
        .into_iter()
        .filter(|r| !matches!(r, Record::Heartbeat { .. }))
        .collect();
    (records, texts)
}

/// Under thread scheduling the consult cadence *is* the Misc cost model,
/// so simulated time — and with it the values returned by clock-reading
/// natives — legitimately shifts with the cap. Mask ND payloads there;
/// every structural fact (which native, which thread, which sequence
/// number) must still match.
fn mask_nd_payloads(records: Vec<Record>) -> Vec<Record> {
    records
        .into_iter()
        .map(|r| match r {
            Record::NativeResult { t, seq, sig_hash, .. } => Record::NativeResult {
                t,
                seq,
                sig_hash,
                result: LoggedResult::Ok(None),
                out_args: Vec::new(),
            },
            other => other,
        })
        .collect()
}

/// The block cap only tunes how much work happens between progress-check
/// consults; every logged decision point (scheduling, locks, outputs)
/// must be identical from per-unit consults (`cap=1`) through unbounded
/// segments (`cap=0`). Run under the fused engine this is also the
/// fusion-off equivalence proof: at `cap=1` the remaining-budget test
/// `n + len <= remaining` fails for every superinstruction (len ≥ 2), so
/// the run executes purely quickened singles — and must still produce
/// the identical record stream. Under lock synchronization the whole
/// record stream — ND payloads included — must match byte-for-byte;
/// under thread scheduling clock-reading natives see the (intentionally)
/// cheaper Misc accounting, so their payloads are masked.
#[test]
fn block_cap_never_changes_records_or_outputs() {
    for w in workloads::spec_suite().iter().filter(|w| w.name == "jess" || w.name == "db") {
        for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
            let cfg = |cap| {
                let mut cfg = FtConfig { mode, ..FtConfig::default() };
                cfg.vm.engine = DispatchEngine::Fused;
                cfg.vm.block_cap = cap;
                cfg
            };
            let normalize = |records: Vec<Record>| match mode {
                ReplicationMode::LockSync => records,
                ReplicationMode::ThreadSched => mask_nd_payloads(records),
            };
            let (base_recs, base_out) = logged_records(w, cfg(0));
            let base_recs = normalize(base_recs);
            for cap in [1u32, 7, 64] {
                let (recs, out) = logged_records(w, cfg(cap));
                assert_eq!(out, base_out, "{} {mode} cap={cap}: outputs differ", w.name);
                assert_eq!(
                    normalize(recs),
                    base_recs,
                    "{} {mode} cap={cap}: records differ",
                    w.name
                );
            }
        }
    }
}

/// Cuts a snapshot after an odd unit budget — deliberately *inside* a
/// straight-line run, where only the decoded-PC bookkeeping pins the
/// resume point — and requires the restored VM to finish with the exact
/// output and instruction count of an uninterrupted run. Under the fused
/// engine the 37-unit budget exhausts mid-fused-region (the worker's
/// `Load; IfNot` loop head fuses, and when the superinstruction no
/// longer fits the budget the executor walks its constituent singles one
/// unit at a time), so the cut pc can rest on an interior slot of a
/// fused region; the restore must resume through those interior singles
/// and re-enter superinstruction dispatch at the next fusion start. All
/// three engines must agree on the final outputs and instruction count,
/// and inline caches (transient, per-replica) must rewarm invisibly
/// after the restore.
#[test]
fn mid_block_snapshot_restores_exactly() {
    let w = workloads::micro::sync_counter(2, 60);
    let mut finals: Vec<(Vec<String>, u64)> = Vec::new();
    for engine in [DispatchEngine::Fused, DispatchEngine::Decoded, DispatchEngine::Match] {
        let cfg = VmConfig { quantum: 50, quantum_jitter: 30, engine, ..VmConfig::default() };

        let uninterrupted = {
            let world = World::shared();
            let env = SimEnv::new("p", world.clone(), SimTime::ZERO, 7);
            let mut vm =
                Vm::new(w.program.clone(), NativeRegistry::with_builtins(), env, cfg.clone())
                    .expect("vm builds");
            let report = vm.run(&mut NoopCoordinator::new()).expect("runs");
            let texts = world.borrow().console_texts();
            (texts, report.counters.instructions)
        };

        let world = World::shared();
        let env = SimEnv::new("p", world.clone(), SimTime::ZERO, 7);
        let mut vm = Vm::new(w.program.clone(), NativeRegistry::with_builtins(), env, cfg.clone())
            .expect("vm builds");
        let mut coord = NoopCoordinator::new();
        // An odd budget lands between block boundaries; retry until the VM
        // is also quiescent (no native in flight), which snapshots require.
        let blob = loop {
            match vm.run_slice(&mut coord, 37).expect("runs") {
                SliceOutcome::Budget | SliceOutcome::Paused => {
                    vm.poll_suspended(&mut coord);
                    if vm.quiescent() {
                        break vm.snapshot(&[]).expect("snapshot at quiescent point");
                    }
                }
                SliceOutcome::Completed(_) | SliceOutcome::Stopped(_) => {
                    panic!("workload finished before a mid-run cut")
                }
            }
        };
        drop(vm);

        let (mut restored, ext) = Vm::restore(
            w.program.clone(),
            NativeRegistry::with_builtins(),
            world.clone(),
            &cfg,
            &blob,
        )
        .expect("snapshot restores");
        assert!(ext.is_empty());
        let report = restored.run(&mut NoopCoordinator::new()).expect("restored run finishes");
        assert_eq!(
            world.borrow().console_texts(),
            uninterrupted.0,
            "{engine:?}: outputs diverged after restore"
        );
        assert_eq!(
            report.counters.instructions, uninterrupted.1,
            "{engine:?}: instruction count diverged after restore"
        );
        finals.push(uninterrupted);
    }
    assert_eq!(finals[0], finals[1], "fused vs decoded finals differ");
    assert_eq!(finals[1], finals[2], "decoded vs match finals differ");
}
