//! N-replica group acceptance scenarios: rank-ordered promotion chains
//! under adversarial links, and BFT-lite digest voting demoting a
//! byzantine primary before any corrupted output byte escapes.

use ftjvm::netsim::{FailureDetector, FaultPlan, SimTime, WireCodec};
use ftjvm::workloads::{micro, Workload};
use ftjvm::{AckPolicy, FtConfig, FtJvm, GroupConfig, NetFaultPlan, ReplicationMode};

/// The adversarial link: `drop` loss plus duplication, corruption,
/// reordering, and jitter (same shape as `tests/crashpoints.rs`).
fn mixed_plan(seed: u64, drop: f64) -> NetFaultPlan {
    NetFaultPlan {
        seed,
        drop,
        duplicate: 0.05,
        corrupt: 0.02,
        reorder: 0.10,
        jitter: SimTime::from_micros(300),
        ..NetFaultPlan::default()
    }
}

/// Group runs need checkpointing (state transfer grounds every join) and
/// a detector fast enough for micro-workload timescales.
fn group_cfg(mode: ReplicationMode) -> FtConfig {
    FtConfig {
        mode,
        checkpoint_interval: Some(3),
        detector: FailureDetector::new(SimTime::from_millis(1), 2),
        ..FtConfig::default()
    }
}

/// The failure-free reference console (classic pair, default config).
fn free_console(w: &Workload, mode: ReplicationMode) -> Vec<String> {
    FtJvm::new(w.program.clone(), FtConfig { mode, ..FtConfig::default() })
        .run_replicated()
        .unwrap_or_else(|e| panic!("{} {mode} free: {e}", w.name))
        .console()
}

/// Output commits in the failure-free run — kill thresholds derive from it.
fn free_commits(w: &Workload, mode: ReplicationMode) -> u64 {
    FtJvm::new(w.program.clone(), FtConfig { mode, ..FtConfig::default() })
        .run_replicated()
        .unwrap_or_else(|e| panic!("{} {mode} probe: {e}", w.name))
        .primary_stats
        .output_commits
}

// --- failure-free group ---------------------------------------------------

/// With no faults a 3-replica group is an observable no-op relative to the
/// classic pair: byte-identical console, exactly-once, zero failovers.
#[test]
fn failure_free_group_matches_pair() {
    let w = micro::file_journal(120);
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let free = free_console(&w, mode);
        let report = FtJvm::new(w.program.clone(), group_cfg(mode))
            .run_group(GroupConfig::default())
            .unwrap_or_else(|e| panic!("{mode} group: {e}"));
        assert!(report.completed, "{mode}: group must complete");
        assert!(!report.crashed, "{mode}: no reign may end in a crash");
        assert_eq!(report.survivor, 0, "{mode}: the original primary finishes");
        assert_eq!(report.console(), free, "{mode}: group console");
        report.check_no_duplicate_outputs().expect("exactly-once");
        assert!(report.failovers.is_empty(), "{mode}: no failovers expected");
        assert_eq!(report.reigns.len(), 1, "{mode}: exactly one reign");
    }
}

// --- the acceptance chain: three successive primary kills -----------------

/// A 5-replica group over a seeded 20%-loss adversarial link survives
/// three successive primary kills — the original primary, then two
/// promoted successors — with byte-identical, exactly-once output.
#[test]
fn five_replica_chain_survives_three_primary_kills_under_loss() {
    // Generously sized: after each promotion the group needs a re-forming
    // window (epoch cut + state transfer) before the next kill lands, and
    // the freshly promoted primary runs tens of outputs uncovered while
    // its survivors re-home.
    let w = micro::file_journal(420);
    for (mode, seed) in
        [(ReplicationMode::LockSync, 0x5EED_0001u64), (ReplicationMode::ThreadSched, 0x5EED_0002)]
    {
        let free = free_console(&w, mode);
        let commits = free_commits(&w, mode);
        assert!(commits >= 100, "{mode}: workload too small for a kill chain");
        // `BeforeOutput` thresholds live in the global output-id sequence
        // that promotion continues, so increasing thresholds fell each
        // reign in turn.
        let kills = vec![
            FaultPlan::BeforeOutput(commits / 5),
            FaultPlan::BeforeOutput(commits / 2),
            FaultPlan::BeforeOutput(commits * 4 / 5),
        ];
        let cfg = FtConfig { net_fault: mixed_plan(seed, 0.20), ..group_cfg(mode) };
        let report = FtJvm::new(w.program.clone(), cfg)
            .run_group(GroupConfig { size: 5, kills, ..GroupConfig::default() })
            .unwrap_or_else(|e| panic!("{mode} chain: {e}"));
        assert!(report.completed, "{mode}: the chain must complete");
        assert_eq!(report.failovers.len(), 3, "{mode}: expected exactly three failovers");
        assert_eq!(report.console(), free, "{mode}: chain console");
        report
            .check_no_duplicate_outputs()
            .unwrap_or_else(|id| panic!("{mode}: duplicate output {id}"));
        // Rank order: member 1 promotes first; its successor is whichever
        // replacement re-homed first, but the final survivor must be a
        // standby, not the long-dead original primary.
        assert_eq!(report.failovers[0].promoted, 1, "{mode}: rank-ordered promotion");
        assert_ne!(report.survivor, 0, "{mode}: the original primary is dead");
        assert_eq!(report.reigns.len(), 4, "{mode}: three failovers mean four reigns");
    }
}

/// The same chain holds under the compact delta/varint codec (promotion
/// restarts encoder contexts per reign; re-homing restores them from
/// snapshots).
#[test]
fn chain_holds_under_compact_codec() {
    let w = micro::file_journal(300);
    let mode = ReplicationMode::LockSync;
    let free = FtJvm::new(
        w.program.clone(),
        FtConfig { mode, codec: WireCodec::Compact, ..FtConfig::default() },
    )
    .run_replicated()
    .unwrap_or_else(|e| panic!("compact free: {e}"))
    .console();
    let commits = free_commits(&w, mode);
    let kills =
        vec![FaultPlan::BeforeOutput(commits / 4), FaultPlan::BeforeOutput(commits * 3 / 4)];
    let cfg = FtConfig {
        codec: WireCodec::Compact,
        net_fault: mixed_plan(0xC0DEC, 0.10),
        ..group_cfg(mode)
    };
    let report = FtJvm::new(w.program.clone(), cfg)
        .run_group(GroupConfig { size: 4, kills, ..GroupConfig::default() })
        .unwrap_or_else(|e| panic!("compact chain: {e}"));
    assert!(report.completed, "compact chain must complete");
    assert_eq!(report.failovers.len(), 2);
    assert_eq!(report.console(), free, "compact chain console");
    report.check_no_duplicate_outputs().expect("exactly-once");
}

// --- standby death inside a group -----------------------------------------

/// Killing a mid-rank standby degrades nothing: the group detects it,
/// re-recruits the slot over state transfer, and still survives a later
/// primary kill.
#[test]
fn standby_death_is_absorbed_then_primary_dies() {
    let w = micro::file_journal(200);
    let mode = ReplicationMode::LockSync;
    let free = free_console(&w, mode);
    let commits = free_commits(&w, mode);
    let report = FtJvm::new(w.program.clone(), group_cfg(mode))
        .run_group(GroupConfig {
            size: 3,
            kills: vec![FaultPlan::BeforeOutput(commits * 3 / 4)],
            kill_standby_after_units: Some((1, 512)),
            ..GroupConfig::default()
        })
        .unwrap_or_else(|e| panic!("standby-kill: {e}"));
    assert!(report.completed, "group must complete");
    assert_eq!(report.failovers.len(), 1, "one failover expected");
    assert_eq!(report.console(), free, "console after standby + primary death");
    report.check_no_duplicate_outputs().expect("exactly-once");
    assert!(
        report.timeline.iter().any(|m| m.what.contains("m2 killed")),
        "timeline must record the standby kill: {:#?}",
        report.timeline
    );
}

// --- BFT-lite: digest voting ----------------------------------------------

/// A byzantine primary — its ND stream bit-flipped post-digest on every
/// link — cannot gather `vote_quorum = 3` matching digests: it demotes
/// itself before releasing any corrupted output byte, the honest
/// lowest-rank standby promotes, and the group finishes byte-identically.
#[test]
fn byzantine_primary_demoted_before_corrupt_output() {
    let w = micro::file_journal(120);
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        let free = free_console(&w, mode);
        let cfg = FtConfig {
            net_fault: NetFaultPlan { byzantine_at: vec![4], ..NetFaultPlan::default() },
            ..group_cfg(mode)
        };
        let report = FtJvm::new(w.program.clone(), cfg)
            .run_group(GroupConfig { vote_quorum: Some(3), ..GroupConfig::default() })
            .unwrap_or_else(|e| panic!("{mode} byzantine: {e}"));
        assert!(report.demoted_by_vote(), "{mode}: the quorum gate must demote the primary");
        assert!(report.byzantine_flips() > 0, "{mode}: the flip must have fired");
        assert_eq!(report.failovers.len(), 1, "{mode}: demotion triggers one failover");
        assert!(report.failovers[0].demoted_by_vote, "{mode}: failover must record the demotion");
        assert_eq!(report.failovers[0].promoted, 1, "{mode}: rank 1 promotes");
        assert!(report.completed, "{mode}: the group must still finish");
        assert_eq!(report.console(), free, "{mode}: no corrupted byte may have escaped");
        report.check_no_duplicate_outputs().expect("exactly-once");
    }
}

/// Equivocation: the primary corrupts only one standby's copy. With
/// `vote_quorum = 2` the honest majority carries the output release; the
/// poisoned standby is the digest outlier — evicted, re-recruited from an
/// honest snapshot, and the group completes without any failover.
#[test]
fn equivocating_link_evicts_the_poisoned_standby() {
    let w = micro::file_journal(120);
    let mode = ReplicationMode::LockSync;
    let free = free_console(&w, mode);
    let cfg = FtConfig {
        net_fault: NetFaultPlan {
            byzantine_at: vec![4],
            byzantine_link: Some(1),
            ..NetFaultPlan::default()
        },
        ..group_cfg(mode)
    };
    let report = FtJvm::new(w.program.clone(), cfg)
        .run_group(GroupConfig {
            size: 3,
            ack_policy: AckPolicy::Majority,
            vote_quorum: Some(2),
            ..GroupConfig::default()
        })
        .unwrap_or_else(|e| panic!("equivocation: {e}"));
    assert!(report.evictions >= 1, "the poisoned standby must be evicted");
    assert!(!report.demoted_by_vote(), "the honest majority must keep the primary");
    assert!(report.failovers.is_empty(), "no promotion expected");
    assert!(report.completed, "the group must complete");
    assert_eq!(report.console(), free, "console unaffected by the equivocation");
    report.check_no_duplicate_outputs().expect("exactly-once");
}

// --- configuration validation ---------------------------------------------

#[test]
fn group_config_validation() {
    let w = micro::file_journal(10);
    let h = FtJvm::new(w.program.clone(), group_cfg(ReplicationMode::LockSync));
    assert!(h.run_group(GroupConfig { size: 1, ..GroupConfig::default() }).is_err());
    assert!(h.run_group(GroupConfig { vote_quorum: Some(1), ..GroupConfig::default() }).is_err());
    assert!(h.run_group(GroupConfig { vote_quorum: Some(9), ..GroupConfig::default() }).is_err());
    // No checkpoint interval → state transfer is impossible → refused.
    let no_ckpt = FtJvm::new(
        w.program.clone(),
        FtConfig { mode: ReplicationMode::LockSync, ..FtConfig::default() },
    );
    assert!(no_ckpt.run_group(GroupConfig::default()).is_err());
}
