//! The kitchen sink: one program exercising every replicated feature at
//! once — multithreading with wait/notify, synchronized methods, phased
//! natives acquiring locks internally, ND clock/RNG inputs, file I/O,
//! socket streams, console output, allocation pressure (GC thread), and
//! finalizers — swept across crash points under all three replication
//! techniques.

use ftjvm::netsim::FaultPlan;
use ftjvm::vm::class::builtin;
use ftjvm::vm::program::ProgramBuilder;
use ftjvm::vm::{Cmp, Program};
use ftjvm::{FtConfig, FtJvm, LockVariant, ReplicationMode};
use std::sync::Arc;

fn build_sink() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let wait = b.import_native("obj.wait", 1, false);
    let notify_all = b.import_native("obj.notify_all", 1, false);
    let clock = b.import_native("sys.clock", 0, true);
    let rand = b.import_native("sys.rand", 1, true);
    let fopen = b.import_native("file.open", 1, true);
    let fwrite = b.import_native("file.write", 3, true);
    let connect = b.import_native("sock.connect", 1, true);
    let send = b.import_native("sock.send", 3, true);
    let locked_sum = b.import_native("bulk.locked_sum", 2, true);
    let logname = b.intern("sink.log");
    let peer = b.intern("sink-peer");
    let chunk = b.intern("chunk!");

    // Sink class: statics 0=acc, 1=done, 2=lock obj, 3=work array,
    // 4=fd, 5=sd. Plus a finalizable class for GC churn.
    let cls = b.add_class("Sink", builtin::OBJECT, 0, 6);
    let fin_cls = b.add_class("Churn", builtin::OBJECT, 0, 1);
    let mut finalize = b.method("Churn.finalize", 1);
    finalize.get_static(fin_cls, 0).push_i(1).add().put_static(fin_cls, 0).ret_void();
    let finalize = finalize.build(&mut b);
    b.set_finalizer(fin_cls, finalize);

    // add(v): synchronized accumulator.
    let mut add = b.method("Sink.add", 1);
    add.static_of(cls).synchronized();
    add.get_static(cls, 0).load(0).add().push_i(1_000_003).rem().put_static(cls, 0).ret_void();
    let add = add.build(&mut b);

    // worker(id): mixes everything.
    let mut w = b.method("worker", 1);
    {
        let m = &mut w;
        let done = m.new_label();
        m.push_i(0).store(1);
        let top = m.bind_new_label();
        m.load(1).push_i(10).icmp(Cmp::Ge).if_true(done);
        // ND inputs folded into the accumulator (replicated via the log).
        m.invoke_native(clock, 0).push_i(31).rem().invoke(add);
        m.push_i(50).invoke_native(rand, 1).invoke(add);
        // Phased native with internal locking.
        m.get_static(cls, 2).get_static(cls, 3).invoke_native(locked_sum, 2).invoke(add);
        // Allocation churn (GC + finalizer system threads).
        m.new_obj(fin_cls).pop();
        m.inc(1, 1).goto(top);
        m.bind(done);
        // Signal completion through wait/notify.
        m.class_obj(cls).monitor_enter();
        m.get_static(cls, 1).push_i(1).add().put_static(cls, 1);
        m.class_obj(cls).invoke_native(notify_all, 1);
        m.class_obj(cls).monitor_exit();
        m.ret_void();
    }
    let w = w.build(&mut b);

    // main(scale)
    let mut m = b.method("main", 1);
    {
        m.push_i(0).put_static(cls, 0);
        m.push_i(0).put_static(cls, 1);
        m.new_obj(builtin::OBJECT).put_static(cls, 2);
        m.push_i(6).new_array().store(1);
        let filled = m.new_label();
        m.push_i(0).store(2);
        let fill = m.bind_new_label();
        m.load(2).push_i(6).icmp(Cmp::Ge).if_true(filled);
        m.load(1).load(2).load(2).push_i(4).mul().astore();
        m.inc(2, 1).goto(fill);
        m.bind(filled);
        m.load(1).put_static(cls, 3);
        m.push_i(0).put_static(fin_cls, 0);
        // Environment handles.
        m.const_str(logname).invoke_native(fopen, 1).put_static(cls, 4);
        m.const_str(peer).invoke_native(connect, 1).put_static(cls, 5);
        // Workers.
        for id in 0..3 {
            m.push_method(w).push_i(id).invoke_native(spawn, 2);
        }
        // Wait for all three with wait/notify.
        m.class_obj(cls).monitor_enter();
        let check = m.bind_new_label();
        let ready = m.new_label();
        m.get_static(cls, 1).push_i(3).icmp(Cmp::Eq).if_true(ready);
        m.class_obj(cls).invoke_native(wait, 1);
        m.goto(check);
        m.bind(ready);
        m.get_static(cls, 0).store(3);
        m.class_obj(cls).monitor_exit();
        // Persist + stream + print the result.
        m.get_static(cls, 4).const_str(chunk).push_i(6).invoke_native(fwrite, 3).pop();
        m.get_static(cls, 5).const_str(chunk).push_i(6).invoke_native(send, 3).pop();
        m.load(3).invoke_native(print, 1);
        m.get_static(fin_cls, 0).push_i(0).icmp(Cmp::Ge).invoke_native(print, 1);
        m.ret_void();
    }
    let entry = m.build(&mut b);
    Arc::new(b.build(entry).expect("sink verifies"))
}

fn techniques() -> [(ReplicationMode, LockVariant); 3] {
    [
        (ReplicationMode::LockSync, LockVariant::PerAcquisition),
        (ReplicationMode::LockSync, LockVariant::Intervals),
        (ReplicationMode::ThreadSched, LockVariant::PerAcquisition),
    ]
}

#[test]
fn kitchen_sink_failover_sweep() {
    let program = build_sink();
    for (mode, variant) in techniques() {
        let mk = |fault| FtConfig { mode, lock_variant: variant, fault, ..FtConfig::default() };
        let free = FtJvm::new(program.clone(), mk(FaultPlan::None))
            .run_replicated()
            .unwrap_or_else(|e| panic!("{mode}/{variant} free: {e}"));
        assert!(free.primary.uncaught.is_empty());
        // Output-window crashes have the complete execution history in the
        // log (the commit flushes everything), so the backup reproduces
        // the exact console — non-deterministic inputs included.
        let mut exact: Vec<FaultPlan> = (0..3).map(FaultPlan::BeforeOutput).collect();
        exact.extend((0..3).map(FaultPlan::AfterOutput));
        // Mid-run crashes hand authority to the backup before all ND
        // inputs were drawn: the accumulator may legitimately differ
        // (state-machine semantics require consistency with outputs
        // already released — there were none), but every output invariant
        // must still hold.
        let mid: Vec<FaultPlan> =
            (200..6000).step_by(650).map(FaultPlan::AfterInstructions).collect();
        for (fault, must_match) in
            exact.into_iter().map(|f| (f, true)).chain(mid.into_iter().map(|f| (f, false)))
        {
            let report = FtJvm::new(program.clone(), mk(fault))
                .run_with_failure()
                .unwrap_or_else(|e| panic!("{mode}/{variant} {fault:?}: {e}"));
            if must_match {
                assert_eq!(report.console(), free.console(), "{mode}/{variant} {fault:?}");
            } else {
                assert_eq!(report.console().len(), 2, "{mode}/{variant} {fault:?}");
                assert_eq!(report.console()[1], "1", "{mode}/{variant} {fault:?}");
            }
            report.check_no_duplicate_outputs().expect("exactly-once");
            let world = report.world.borrow();
            assert_eq!(world.file("sink.log").unwrap(), b"chunk!", "{mode}/{variant} {fault:?}");
            assert_eq!(world.socket_stream("sink-peer").len(), 1, "{mode}/{variant} {fault:?}");
        }
    }
}

#[test]
fn lock_sync_survives_maximally_fine_interleaving() {
    // The paper: lock-sync "works on multiprocessor systems" — its
    // correctness never relies on coarse uniprocessor timeslices. Model
    // the SMP extreme with 1–2-unit quanta (every instruction boundary is
    // a potential switch) and verify exact recovery.
    let program = build_sink();
    for seed in [1u64, 17] {
        let mut c = FtConfig {
            mode: ReplicationMode::LockSync,
            fault: FaultPlan::BeforeOutput(2),
            primary_seed: seed,
            ..FtConfig::default()
        };
        c.vm.quantum = 1;
        c.vm.quantum_jitter = 2;
        c.flush_threshold = 0;
        let mut free_cfg = c.clone();
        free_cfg.fault = FaultPlan::None;
        let free = FtJvm::new(program.clone(), free_cfg).run_replicated().expect("free");
        let report = FtJvm::new(program.clone(), c).run_with_failure().expect("failover");
        assert_eq!(report.console(), free.console(), "seed {seed}");
        report.check_no_duplicate_outputs().expect("exactly-once");
    }
}
