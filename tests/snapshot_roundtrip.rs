//! Snapshot round-trip properties at system level: epoch snapshots must
//! restore into a backup that continues **bit-for-bit** — across all six
//! SPEC JVM98 analogs, both wire codecs, and randomized cut cadences —
//! and a corrupted snapshot blob must never restore (mirroring the
//! mutation classes of the `ftjvm-fuzz-frames` corpus fuzzer: bit flips,
//! truncation, extension, splice, and pure noise).

use ftjvm::netsim::{FaultPlan, WireCodec};
use ftjvm::vm::coordinator::NoopCoordinator;
use ftjvm::vm::{SimEnv, SliceOutcome, SnapshotError, Vm, World};
use ftjvm::workloads::{self, Workload};
use ftjvm::{FtConfig, FtJvm, LagBudget, NativeRegistry, ReplicationMode, VmConfig};
use proptest::prelude::*;

fn run_report(w: &Workload, cfg: FtConfig) -> ftjvm::PairReport {
    let crashes = cfg.fault.is_armed();
    let h = FtJvm::new(w.program.clone(), cfg);
    let report = if crashes { h.run_with_failure() } else { h.run_replicated() }
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    report
        .check_no_duplicate_outputs()
        .unwrap_or_else(|id| panic!("{}: duplicate output {id}", w.name));
    report
}

/// Every SPEC analog, both codecs: crash the primary mid-run with epoch
/// checkpointing on — recovery restores the latest snapshot and replays
/// only the stored suffix, and the output must still be byte-identical
/// to the failure-free run. This is the system-level snapshot round
/// trip: VM state, codec context, ND/output sequences, and SE payloads
/// all cross the blob.
#[test]
fn spec_analogs_recover_from_snapshot_under_both_codecs() {
    for (i, w) in workloads::spec_suite().iter().enumerate() {
        // Alternate techniques to bound runtime; both see three analogs.
        let mode =
            if i % 2 == 0 { ReplicationMode::LockSync } else { ReplicationMode::ThreadSched };
        for codec in [WireCodec::Fixed, WireCodec::Compact] {
            let base = FtConfig { mode, codec, ..FtConfig::default() };
            let free = run_report(w, base.clone());
            // mtrt's checksum is interleaving-dependent beyond the log's
            // end, so (as in the cold/hot failover sweeps) its crash must
            // commit the complete log.
            let mid_run_crash = w.name != "mtrt";
            let fault = if mid_run_crash {
                FaultPlan::AfterInstructions(free.primary.counters.instructions * 3 / 5)
            } else {
                FaultPlan::BeforeOutput(0)
            };
            // Aim for a handful of cuts before the crash, whatever the
            // analog's flush cadence (jess barely flushes; db is chatty).
            let interval = (free.primary_stats.flushes / 8).max(1);
            let cfg = FtConfig {
                lag_budget: LagBudget::Cold,
                checkpoint_interval: Some(interval),
                fault,
                ..base
            };
            let crashed = run_report(w, cfg);
            assert!(crashed.crashed, "{} {mode} {codec}: fault must fire", w.name);
            assert_eq!(
                crashed.console(),
                free.console(),
                "{} {mode} {codec}: snapshot recovery diverged",
                w.name
            );
            // mtrt crashes before its first output — and flushing is
            // commit-driven — so only the mid-run analogs can have cut.
            if mid_run_crash && free.primary_stats.flushes >= 4 {
                assert!(
                    crashed.primary_stats.epochs_cut >= 1,
                    "{} {mode} {codec}: no epoch was ever cut ({} flushes)",
                    w.name,
                    free.primary_stats.flushes
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Randomized cut cadence × crash point × codec × technique ×
    /// standby temperature: wherever the epoch falls relative to the
    /// crash, restore-and-continue output equals the failure-free run.
    #[test]
    fn random_cut_cadences_round_trip(
        interval in 1u64..8,
        crash_pm in 100u64..900,
        workload_sel in 0u8..3,
        compact in any::<bool>(),
        hot in any::<bool>(),
    ) {
        let (w, mode) = match workload_sel {
            0 => (workloads::micro::sync_counter(2, 120), ReplicationMode::ThreadSched),
            1 => (workloads::micro::file_journal(40), ReplicationMode::LockSync),
            _ => (workloads::micro::nd_natives(60), ReplicationMode::LockSync),
        };
        let codec = if compact { WireCodec::Compact } else { WireCodec::Fixed };
        let base = FtConfig { mode, codec, ..FtConfig::default() };
        let free = run_report(&w, base.clone());
        let crash_at = free.primary.counters.instructions * crash_pm / 1000;
        let cfg = FtConfig {
            lag_budget: if hot { LagBudget::Hot } else { LagBudget::Cold },
            checkpoint_interval: Some(interval),
            fault: FaultPlan::AfterInstructions(crash_at.max(1)),
            ..base
        };
        let crashed = run_report(&w, cfg);
        prop_assert!(crashed.crashed);
        prop_assert_eq!(crashed.console(), free.console());
    }
}

// --- corrupt-snapshot rejection -------------------------------------------

/// Deterministic splitmix64, as in `ftjvm-fuzz-frames`.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// One mutation, mirroring the fuzz-frames classes: bit flips,
/// truncation, extension, splice, or pure noise.
fn mutate(rng: &mut Rng, base: &[u8]) -> Vec<u8> {
    let mut v = base.to_vec();
    match rng.next() % 5 {
        0 => {
            for _ in 0..=rng.below(8) {
                let i = rng.below(v.len());
                v[i] ^= 1 << rng.below(8);
            }
        }
        1 => v.truncate(rng.below(v.len())),
        2 => {
            for _ in 0..=rng.below(64) {
                v.push(rng.next() as u8);
            }
        }
        3 => {
            let at = rng.below(v.len());
            let len = rng.below(v.len() - at);
            let src = rng.below(v.len().saturating_sub(len.max(1)));
            let splice: Vec<u8> = v[src..src + len].to_vec();
            v[at..at + len].copy_from_slice(&splice);
        }
        _ => {
            let len = rng.below(256);
            v = (0..len).map(|_| rng.next() as u8).collect();
        }
    }
    v
}

fn snapshot_of(w: &Workload, cfg: &VmConfig) -> Vec<u8> {
    let env = SimEnv::new("p", World::shared(), ftjvm::netsim::SimTime::ZERO, 7);
    let mut vm = Vm::new(w.program.clone(), NativeRegistry::with_builtins(), env, cfg.clone())
        .expect("vm builds");
    let mut coord = NoopCoordinator::new();
    let mut slices = 0u32;
    loop {
        match vm.run_slice(&mut coord, 64).expect("runs") {
            SliceOutcome::Budget | SliceOutcome::Paused => {
                vm.poll_suspended(&mut coord);
                slices += 1;
                if slices >= 4 && vm.quiescent() {
                    break;
                }
            }
            SliceOutcome::Completed(_) | SliceOutcome::Stopped(_) => {
                panic!("{}: finished before a quiescent cut", w.name)
            }
        }
    }
    vm.snapshot(&[]).expect("snapshot at quiescent point").to_vec()
}

/// 500 seeded mutations per workload: a mutated blob must either restore
/// to the *identical* snapshot (the mutation missed every load-bearing
/// byte — only possible for a byte-identical blob) or be rejected with a
/// clean [`SnapshotError`]; it must never panic or restore silently.
#[test]
fn corrupt_snapshots_never_restore() {
    let cfg = VmConfig { quantum: 50, quantum_jitter: 30, ..VmConfig::default() };
    for w in [workloads::micro::nd_natives(60), workloads::micro::sync_counter(2, 80)] {
        let blob = snapshot_of(&w, &cfg);
        let restore = |bytes: &[u8]| {
            Vm::restore(
                w.program.clone(),
                NativeRegistry::with_builtins(),
                World::shared(),
                &cfg,
                bytes,
            )
            .map(|_| ())
        };

        // Targeted classes first (the vm crate asserts exact variants;
        // here we re-check through the public facade).
        assert_eq!(restore(&blob[..4]), Err(SnapshotError::Truncated));
        let mut bad = blob.clone();
        bad[0] ^= 0xFF;
        assert_eq!(restore(&bad), Err(SnapshotError::BadMagic));
        let mut bad = blob.clone();
        bad[4] = 99;
        assert_eq!(restore(&bad), Err(SnapshotError::BadVersion(99)));
        for pos in [9, blob.len() / 2, blob.len() - 1] {
            let mut bad = blob.clone();
            bad[pos] ^= 0x10;
            assert!(
                matches!(restore(&bad), Err(SnapshotError::Crc { .. })),
                "{}: flip at {pos} must fail the checksum",
                w.name
            );
        }

        // Seeded sweep over every mutation class.
        let mut rng = Rng(0xC0FFEE ^ blob.len() as u64);
        for i in 0..500 {
            let bad = mutate(&mut rng, &blob);
            if bad == blob {
                continue; // the mutation was an identity (e.g. zero-length splice)
            }
            assert!(
                restore(&bad).is_err(),
                "{}: mutation {i} altered the blob yet restored",
                w.name
            );
        }
    }
}
