//! The paper's §4.3 garbage-collection hazards, demonstrated executably:
//! soft references and improper finalizers are channels for
//! non-deterministic input, which is why the implementation treats soft
//! references as strong and assumes finalizers only touch local state.

use ftjvm::netsim::FaultPlan;
use ftjvm::vm::class::builtin;
use ftjvm::vm::program::ProgramBuilder;
use ftjvm::vm::Cmp;
use ftjvm::{FtConfig, FtJvm, ReplicationMode};
use std::sync::Arc;

/// A cache keyed through a soft reference: the program allocates garbage
/// to create memory pressure, then checks whether its softly-referenced
/// cache entry survived and prints a hit/miss trace. Under
/// `collect_soft_refs`, whether the entry survives depends on *when* the
/// collector ran — per-replica non-determinism.
fn soft_cache_program(b: &mut ProgramBuilder) -> ftjvm::vm::MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let cls = b.add_class("Cache", builtin::OBJECT, 0, 1); // static 0 = SoftRef
    let mut m = b.method("main", 1);
    // cache = new SoftReference(new Object[3])
    m.new_obj(builtin::SOFT_REF).dup();
    m.push_i(3).new_array().put_field(builtin::SOFT_REF_REFERENT_SLOT);
    m.put_static(cls, 0);
    // 40 rounds: allocate garbage, then probe the cache.
    let done = m.new_label();
    m.push_i(0).store(1);
    let top = m.bind_new_label();
    m.load(1).push_i(40).icmp(Cmp::Ge).if_true(done);
    m.push_i(16).new_array().pop(); // pressure
    {
        let hit = m.new_label();
        let next = m.new_label();
        m.get_static(cls, 0).get_field(builtin::SOFT_REF_REFERENT_SLOT);
        m.if_null(hit); // inverted: null => miss path prints 0
        m.push_i(1).invoke_native(print, 1);
        m.goto(next);
        m.bind(hit);
        m.push_i(0).invoke_native(print, 1);
        m.bind(next);
    }
    m.inc(1, 1).goto(top);
    m.bind(done).ret_void();
    m.build(b)
}

#[test]
fn soft_refs_treated_as_strong_keep_replicas_identical() {
    // The paper's shortcut (§4.3): soft references are never collected, so
    // the cache-hit trace is all hits at every replica.
    let mut b = ProgramBuilder::new();
    let entry = soft_cache_program(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let mut cfg = FtConfig {
        mode: ReplicationMode::LockSync,
        fault: FaultPlan::AfterInstructions(600),
        ..FtConfig::default()
    };
    cfg.vm.gc_threshold = 12; // constant pressure
    cfg.vm.collect_soft_refs = false; // the paper's setting
    cfg.flush_threshold = 0;
    let report = FtJvm::new(program, cfg).run_with_failure().unwrap();
    assert!(report.crashed);
    let console = report.console();
    assert_eq!(console.len(), 40);
    assert!(console.iter().all(|l| l == "1"), "all cache probes hit");
    report.check_no_duplicate_outputs().unwrap();
}

#[test]
fn collecting_soft_refs_makes_replicas_observably_diverge() {
    // Flip the shortcut off: the collector clears the soft referent at
    // pressure-dependent instants, which differ between primary and
    // backup (different allocation/GC interleaving) — exactly the
    // divergence the paper warns about ("the primary might find an object
    // in its cache, while the backup might not").
    let mut b = ProgramBuilder::new();
    let entry = soft_cache_program(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let mut saw_divergence = false;
    for seed in 0..12u64 {
        let mut cfg = FtConfig {
            mode: ReplicationMode::LockSync,
            fault: FaultPlan::AfterOutput(5),
            primary_seed: seed,
            backup_seed: seed ^ 0xDEAD,
            ..FtConfig::default()
        };
        cfg.vm.gc_threshold = 8;
        cfg.vm.quantum = 31;
        cfg.vm.quantum_jitter = 29;
        cfg.vm.collect_soft_refs = true; // violate the shortcut
        cfg.flush_threshold = 0;
        let mut free_cfg = cfg.clone();
        free_cfg.fault = FaultPlan::None;
        let free = match FtJvm::new(program.clone(), free_cfg).run_replicated() {
            Ok(r) => r.console(),
            Err(_) => continue,
        };
        match FtJvm::new(program.clone(), cfg).run_with_failure() {
            Ok(r) => {
                if r.console() != free {
                    saw_divergence = true;
                    break;
                }
            }
            Err(_) => {
                saw_divergence = true;
                break;
            }
        }
    }
    assert!(
        saw_divergence,
        "collecting soft references should make at least one seed's replay observably diverge"
    );
}

/// An *improper* finalizer (paper §4.3: "it is possible to write improper
/// finalizer methods that do more than free unused memory"): it mutates a
/// shared static that application code then reads. Because finalization
/// timing is collector-driven, the value read differs between replicas.
fn improper_finalizer_program(b: &mut ProgramBuilder) -> ftjvm::vm::MethodId {
    let print = b.import_native("sys.print_int", 1, false);
    let gc = b.import_native("sys.gc", 0, false);
    let cls = b.add_class("Fin", builtin::OBJECT, 0, 1); // static 0 = finalize count
    let mut fin = b.method("Fin.finalize", 1);
    fin.get_static(cls, 0).push_i(1).add().put_static(cls, 0).ret_void();
    let fin = fin.build(b);
    b.set_finalizer(cls, fin);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    let done = m.new_label();
    m.push_i(0).store(1);
    let top = m.bind_new_label();
    m.load(1).push_i(12).icmp(Cmp::Ge).if_true(done);
    // Allocate a finalizable object, drop it, nudge the collector, then
    // print the finalize count the application can observe *right now*.
    // Whether the finalizer *system thread* got scheduled between the
    // collection and the probe depends on preemption timing.
    m.new_obj(cls).pop();
    m.invoke_native(gc, 0);
    m.get_static(cls, 0).invoke_native(print, 1);
    m.inc(1, 1).goto(top);
    m.bind(done).ret_void();
    m.build(b)
}

#[test]
fn improper_finalizers_are_a_divergence_channel() {
    // The observable finalize-count trace depends on when the finalizer
    // *system thread* gets scheduled relative to the probes — and system
    // threads are not replicated. Demonstrate that the trace is
    // scheduling-dependent (two seeds disagree on a bare VM), which is
    // exactly why the paper restricts finalizers to local, deterministic
    // actions.
    let mut b = ProgramBuilder::new();
    let entry = improper_finalizer_program(&mut b);
    let program = Arc::new(b.build(entry).unwrap());
    let trace = |seed: u64, quantum: u32| {
        let mut cfg = FtConfig { primary_seed: seed, ..FtConfig::default() };
        cfg.vm.quantum = quantum;
        cfg.vm.quantum_jitter = quantum / 2;
        let (_, world) = FtJvm::new(program.clone(), cfg).run_unreplicated().unwrap();
        let texts = world.borrow().console_texts();
        texts
    };
    let mut distinct = std::collections::BTreeSet::new();
    for seed in 0..10 {
        distinct.insert(trace(seed, 23));
    }
    assert!(
        distinct.len() > 1,
        "finalizer-visible state should vary with scheduling: {distinct:?}"
    );
}
