//! # ftjvm — a fault-tolerant Java-style virtual machine
//!
//! A from-scratch Rust reproduction of **“A Fault-Tolerant Java Virtual
//! Machine”** (Jeff Napper, Lorenzo Alvisi, Harrick Vin — DSN 2003):
//! transparent primary-backup fault tolerance for a multithreaded bytecode
//! virtual machine, built on the state-machine approach.
//!
//! This crate is the facade: it re-exports the workspace's public API so
//! applications can depend on a single crate.
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`vm`] | `ftjvm-vm` | the bytecode VM: ISA, interpreter, monitors, green threads, GC, natives |
//! | [`replication`] | `ftjvm-core` | the paper's contribution: both replication techniques, SE handlers, the [`FtJvm`] harness |
//! | [`netsim`] | `ftjvm-netsim` | simulated clock, cost model, log channel, fault injection |
//! | [`workloads`] | `ftjvm-workloads` | SPEC JVM98 benchmark analogs |
//!
//! # Quick start: survive a crash with zero application changes
//!
//! ```
//! use ftjvm::{FtConfig, FtJvm, ReplicationMode};
//! use ftjvm::netsim::FaultPlan;
//! use ftjvm::vm::program::ProgramBuilder;
//! use std::sync::Arc;
//!
//! // An ordinary program: prints running totals.
//! let mut b = ProgramBuilder::new();
//! let print = b.import_native("sys.print_int", 1, false);
//! let mut m = b.method("main", 1);
//! m.push_i(0).store(1);
//! for i in 1..=4 {
//!     m.push_i(i).load(1).add().store(1);
//!     m.load(1).invoke_native(print, 1);
//! }
//! m.ret_void();
//! let entry = m.build(&mut b);
//! let program = Arc::new(b.build(entry)?);
//!
//! // Replicate it; kill the primary between its 2nd and 3rd output.
//! let cfg = FtConfig {
//!     mode: ReplicationMode::ThreadSched,
//!     fault: FaultPlan::AfterOutput(1),
//!     ..FtConfig::default()
//! };
//! let report = FtJvm::new(program, cfg).run_with_failure()?;
//! assert!(report.crashed);
//! assert_eq!(report.console(), vec!["1", "3", "6", "10"]);
//! report.check_no_duplicate_outputs().expect("exactly-once output");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The bytecode virtual machine substrate (re-export of `ftjvm-vm`).
pub mod vm {
    pub use ftjvm_vm::*;
    pub use ftjvm_vm::{
        class, coordinator, env, exec, heap, monitor, native, program, thread, value, vtid,
    };
}

/// The replication layer (re-export of `ftjvm-core`).
pub mod replication {
    pub use ftjvm_core::*;
    pub use ftjvm_core::{backup, fleet, ftjvm, group, primary, records, se, stats};
}

/// The simulation substrate (re-export of `ftjvm-netsim`).
pub mod netsim {
    pub use ftjvm_netsim::*;
}

/// The SPEC JVM98 benchmark analogs (re-export of `ftjvm-workloads`).
pub mod workloads {
    pub use ftjvm_workloads::*;
}

pub use ftjvm_core::{
    AckPolicy, CheckpointPlan, CheckpointReport, FtConfig, FtJvm, GroupConfig, GroupReport,
    GroupTask, LagBudget, LockVariant, NetFaultPlan, PairReport, Replica, ReplicaRuntime,
    ReplicationMode, Role, SeRegistry, SideEffectHandler, WireCodec,
};
pub use ftjvm_vm::{NativeRegistry, Program, VmConfig, VmError};
