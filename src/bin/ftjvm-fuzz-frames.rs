//! Corrupt-frame decoder fuzzer (CI smoke): hammer the reliability
//! sublayer's `open_frame` and the record decoders with mutated and
//! random frames. Every input must come back as a clean `Ok`/`Err` —
//! a panic anywhere aborts the process nonzero and fails the build.
//!
//! ```text
//! cargo run --release --bin ftjvm-fuzz-frames -- [iterations] [seed]
//! ```
//!
//! Mutations are seeded and deterministic (splitmix64), so a failing
//! iteration is reproducible from the printed seed.

use ftjvm::replication::codec::{
    build_batch_frame, build_vote_frame, flush_digest, frame_digest, open_frame, parse_vote_frame,
    seal_frame, RecordDecoder, RecordEncoder,
};
use ftjvm::replication::records::{LoggedResult, Record, WireValue};
use ftjvm::vm::vtid::VtPath;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

/// A small corpus of well-formed frames: fixed-encoded records, a
/// compact batch frame, and sealed wrappings of both.
fn corpus() -> Vec<Vec<u8>> {
    let records = vec![
        Record::IdMap { l_id: 7, t: VtPath::root(), t_asn: 1 },
        Record::LockAcq { t: VtPath::root(), t_asn: 2, l_id: 7, l_asn: 1 },
        Record::Sched {
            t: VtPath::root(),
            br_cnt: 41,
            method: 2,
            pc_off: 3,
            mon_cnt: 1,
            l_asn: 0,
            in_native: false,
            next: VtPath::root(),
        },
        Record::NativeResult {
            t: VtPath::root(),
            seq: 5,
            sig_hash: 0xfeed_beef,
            result: LoggedResult::Ok(Some(WireValue::Int(42))),
            out_args: vec![(0, vec![WireValue::Int(-1), WireValue::Null])],
        },
        Record::OutputCommit { t: VtPath::root(), seq: 6, output_id: 9 },
        Record::SeState { handler: 2, payload: vec![1, 2, 3].into() },
    ];
    let mut frames: Vec<Vec<u8>> = Vec::new();
    for r in &records {
        frames.push(r.encode().to_vec());
    }
    let mut enc = RecordEncoder::new();
    let bodies: Vec<bytes::Bytes> = records.iter().map(|r| enc.encode_body(r)).collect();
    frames.push(build_batch_frame(&bodies).to_vec());
    // Digest-vote frames: one per corpus record (claiming its honest
    // digest) plus a whole-flush vote over the combined claim set.
    let claims: Vec<u32> = frames.iter().map(|f| frame_digest(f)).collect();
    let mut votes: Vec<Vec<u8>> =
        claims.iter().enumerate().map(|(i, &d)| build_vote_frame(i as u64, d).to_vec()).collect();
    votes.push(build_vote_frame(u64::MAX, flush_digest(&claims)).to_vec());
    frames.extend(votes);
    let sealed: Vec<Vec<u8>> =
        frames.iter().enumerate().map(|(i, f)| seal_frame(i as u64, f).to_vec()).collect();
    frames.extend(sealed);
    frames
}

/// One mutation: bit flips, truncation, extension, splice, pure noise,
/// or a forged vote (a valid vote header over mutated index/digest
/// payload bytes — the shape a byzantine sender would emit).
fn mutate(rng: &mut Rng, base: &[u8]) -> Vec<u8> {
    let mut v = base.to_vec();
    match rng.next() % 6 {
        0 => {
            for _ in 0..=rng.below(4) {
                if v.is_empty() {
                    break;
                }
                let i = rng.below(v.len());
                v[i] ^= (rng.next() as u8).max(1);
            }
        }
        1 => {
            v.truncate(rng.below(v.len() + 1));
        }
        2 => {
            for _ in 0..=rng.below(8) {
                v.push(rng.next() as u8);
            }
        }
        3 => {
            let n = rng.below(24) + 1;
            v = (0..n).map(|_| rng.next() as u8).collect();
        }
        4 => {
            let cut = rng.below(v.len() + 1);
            v.truncate(cut);
            for _ in 0..rng.below(12) {
                v.push(rng.next() as u8);
            }
        }
        _ => {
            // Forged vote: keep (or plant) the vote tag, then garble the
            // varint frame index and digest bytes after it.
            let tag = build_vote_frame(0, 0)[0];
            if v.is_empty() {
                v.push(tag);
            } else {
                v[0] = tag;
            }
            for _ in 0..=rng.below(6) {
                if v.len() > 1 {
                    let i = 1 + rng.below(v.len() - 1);
                    v[i] ^= (rng.next() as u8).max(1);
                } else {
                    v.push(rng.next() as u8);
                }
            }
        }
    }
    v
}

fn main() {
    let mut args = std::env::args().skip(1);
    let iterations: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(20_000);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0xF7A3);
    let corpus = corpus();
    let mut rng = Rng(seed);
    let (mut sealed_ok, mut sealed_err, mut rec_ok, mut rec_err) = (0u64, 0u64, 0u64, 0u64);
    let (mut vote_ok, mut vote_err) = (0u64, 0u64);
    for _ in 0..iterations {
        let base = &corpus[rng.below(corpus.len())];
        let mutant = bytes::Bytes::from(mutate(&mut rng, base));
        // The sealed-frame opener: must classify, never panic.
        match open_frame(&mutant) {
            Ok(_) => sealed_ok += 1,
            Err(e) => {
                let _ = e.to_string();
                sealed_err += 1;
            }
        }
        // The digest-vote parser the quorum gate trusts with byzantine
        // inputs: must classify, never panic.
        match parse_vote_frame(&mutant) {
            Ok(_) => vote_ok += 1,
            Err(e) => {
                let _ = e.to_string();
                vote_err += 1;
            }
        }
        // The record decoders behind it (fixed single-record and batch).
        let mut out = Vec::new();
        match RecordDecoder::new().decode_frame(mutant, &mut out) {
            Ok(()) => rec_ok += 1,
            Err(e) => {
                let _ = e.to_string();
                rec_err += 1;
            }
        }
    }
    println!(
        "fuzzed {iterations} mutants (seed {seed:#x}): open_frame {sealed_ok} ok / {sealed_err} rejected; \
         vote parse {vote_ok} ok / {vote_err} rejected; \
         record decode {rec_ok} ok / {rec_err} rejected; no panics"
    );
}
