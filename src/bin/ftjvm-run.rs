//! Command-line runner: execute a SPEC analog (or micro workload) under a
//! chosen replication technique, optionally killing the primary, and print
//! a full report.
//!
//! ```text
//! cargo run --release --bin ftjvm-run -- db --mode lock --crash-at 500000
//! cargo run --release --bin ftjvm-run -- mtrt --mode ts
//! cargo run --release --bin ftjvm-run -- jack --mode lock --variant intervals --warm
//! cargo run --release --bin ftjvm-run -- compress --baseline
//! ```

use ftjvm::netsim::{Category, FaultPlan, SimTime};
use ftjvm::replication::{run_fleet, FleetConfig, RouterMode};
use ftjvm::workloads::Workload;
use ftjvm::{FtConfig, FtJvm, GroupConfig, LagBudget, NetFaultPlan, ReplicationMode};

/// Parses a `--threads` operand: a count, or `max` for host parallelism.
fn parse_threads(s: Option<&String>) -> usize {
    match s.map(String::as_str) {
        Some("max") => std::thread::available_parallelism().map_or(1, usize::from),
        Some(n) => n.parse().unwrap_or_else(|_| usage()),
        None => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: ftjvm-run <workload> [options]\n\
         \n\
         workloads: jess jack compress db mpegaudio mtrt\n\
         \n\
         options:\n\
           --mode lock|ts        replication technique (default lock)\n\
           --variant records|intervals   lock-record encoding (default records)\n\
           --codec fixed|compact wire codec (default fixed)\n\
           --crash-at <units>    kill the primary after N execution units\n\
           --crash-before-output <n>  kill in output n's uncertain window\n\
           --backup cold|hot     cold: store the log, replay at failover (default);\n\
                                 hot: co-simulated standby streams the log and\n\
                                 replays only the unconsumed suffix at failover\n\
           --warm                account the backup as warm (legacy: failover\n\
                                 collapses to detection time)\n\
           --checkpoint-interval <n>  cut an epoch snapshot every n flushes:\n\
                                 the acked prefix is truncated on both sides,\n\
                                 bounding log memory to one epoch\n\
           --kill-backup <units> fail-stop the BACKUP once the primary has run\n\
                                 n units (implies a hot standby; requires\n\
                                 --checkpoint-interval); the primary detects it\n\
                                 and keeps executing in degraded mode\n\
           --reintegrate         after the backup dies, recruit a replacement\n\
                                 standby from the latest snapshot plus the live\n\
                                 suffix (requires --checkpoint-interval)\n\
           --group-size <k>      replicate across a k-replica group with\n\
                                 rank-ordered promotion instead of a single\n\
                                 backup (requires --checkpoint-interval; crash\n\
                                 flags become the group's first primary kill)\n\
           --vote-quorum <q>     BFT-lite: release outputs only once q digest\n\
                                 votes match (requires --group-size)\n\
           --seed <n>            primary scheduler seed (default 11)\n\
           --threads <n|max>     worker threads for the promotion path's\n\
                                 suffix decode (results are byte-identical\n\
                                 for every value; default 1)\n\
           --net-fault <spec>    arm the lossy link; spec is comma-separated\n\
                                 k=v pairs: drop/dup/corrupt/reorder (probabilities),\n\
                                 jitter=<micros>, drop-at/dup-at/corrupt-at=<i;j;..>\n\
                                 (pinned attempt indices), partition=<start:end>\n\
                                 e.g. --net-fault drop=0.1,dup=0.05,jitter=300\n\
           --net-seed <n>        seed for the fault plan's coin flips (default 0)\n\
           --baseline            run unreplicated only\n\
           --disasm              print the program listing instead of running\n\
           --disasm-fused        print the decoded listing the fused engine runs\n\
                                 (superinstructions expanded, quickened operands)\n\
           --dump-log <n>        print the first n log records instead of running\n\
         \n\
         fleet mode (no workload argument):\n\
           --fleet <n>           run n replicated pairs on one event-loop\n\
                                 timeline and report aggregate SLOs\n\
           --fleet-seed <n>      fleet master seed (default 0xF1EE7)\n\
           --racks <n>           failure domains (default 8)\n\
           --crash-per-mille <n> per-pair primary crash probability (default 150)\n\
           --kill-per-mille <n>  per-pair backup kill probability (default 100)\n\
           --partition-rack <n>  correlated scenario: kill every backup in rack n\n\
           --no-reintegrate      do not recruit replacement standbys\n\
           --no-shared           give every pair its own uncontended link\n\
           --closed-loop <us>    closed-loop clients with this think time\n\
                                 (default: open loop, 50us interarrival)\n\
           --interarrival <us>   open-loop request interarrival per pair\n\
           --stagger <us>        start-time stagger between pair ids (default 200)\n\
           --group-size <k>      run every fleet slot as a k-replica group\n\
           --vote-quorum <q>     digest vote quorum for fleet group slots\n\
           --threads <n|max>     schedule slots across n worker threads; the\n\
                                 report is byte-identical for every value\n\
                                 (default 1; max = host parallelism)"
    );
    std::process::exit(2)
}

/// Parses fleet-mode flags, runs the fleet, prints the SLO report.
fn fleet_main(args: &[String]) -> ! {
    let mut cfg = FleetConfig::default();
    let mut i = 0;
    let num = |args: &[String], i: &mut usize| -> u64 {
        *i += 1;
        args.get(*i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage())
    };
    while i < args.len() {
        match args[i].as_str() {
            "--fleet" => cfg.pairs = num(args, &mut i) as u32,
            "--fleet-seed" => cfg.seed = num(args, &mut i),
            "--racks" => cfg.racks = num(args, &mut i) as u32,
            "--crash-per-mille" => cfg.crash_per_mille = num(args, &mut i) as u32,
            "--kill-per-mille" => cfg.kill_per_mille = num(args, &mut i) as u32,
            "--partition-rack" => cfg.partition_rack = Some(num(args, &mut i) as u32),
            "--no-reintegrate" => cfg.reintegrate = false,
            "--no-shared" => cfg.shared_per_byte = None,
            "--closed-loop" => {
                cfg.router = RouterMode::Closed { think: SimTime::from_micros(num(args, &mut i)) };
            }
            "--interarrival" => {
                cfg.router =
                    RouterMode::Open { interarrival: SimTime::from_micros(num(args, &mut i)) };
            }
            "--stagger" => cfg.stagger = SimTime::from_micros(num(args, &mut i)),
            "--group-size" => cfg.group_size = Some(num(args, &mut i) as usize),
            "--vote-quorum" => cfg.vote_quorum = Some(num(args, &mut i) as u32),
            "--threads" => {
                i += 1;
                cfg.threads = parse_threads(args.get(i));
            }
            _ => usage(),
        }
        i += 1;
    }
    if cfg.pairs == 0 {
        usage();
    }
    let report = run_fleet(&cfg).unwrap_or_else(|e| fail("fleet run failed", &e));
    println!(
        "fleet: {} pairs, {} racks, seed {:#x}, {} trunk",
        report.pairs,
        cfg.racks,
        cfg.seed,
        if cfg.shared_per_byte.is_some() { "shared" } else { "no" },
    );
    println!(
        "  completed {} / {}   divergent {}   lost (beyond 1-fault model) {}",
        report.completed, report.pairs, report.divergent, report.lost
    );
    println!(
        "  failovers absorbed {}   backups killed {}   degraded entries {}   reintegrated {}",
        report.failovers_absorbed,
        report.backups_killed,
        report.degraded_entries,
        report.reintegrated
    );
    println!(
        "  requests {} served / {} issued   backlog peak {}",
        report.served_requests, report.total_requests, report.backlog_peak
    );
    println!(
        "  output-commit latency p50 {} p99 {} max {}",
        report.commit_p50, report.commit_p99, report.commit_max
    );
    println!(
        "  makespan {}   failovers/sec {:.2}   peak suffix {} frames   peak backup pending {}",
        report.makespan,
        report.failovers_per_sec,
        report.peak_suffix_frames,
        report.peak_backup_pending
    );
    if let Some(s) = &report.shared {
        println!(
            "  trunk: {} frames, {} bytes, queue total {} (peak {}), busy {}",
            s.frames, s.bytes, s.queue_total, s.queue_peak, s.busy
        );
    }
    let p = &report.pool;
    let slots: Vec<String> = p.slots_per_worker.iter().map(u32::to_string).collect();
    println!(
        "  pool: {} threads, slots/worker [{}], {} windows, {} barrier waits, {} trunk intervals merged",
        p.threads,
        slots.join(" "),
        p.windows,
        p.barrier_waits,
        p.merged_intervals,
    );
    let ok = report.all_verified();
    if !ok {
        // Any divergent pair is a tool failure: print its failure
        // timeline so the run is diagnosable, and exit nonzero.
        for o in
            report.outcomes.iter().filter(|o| o.error.is_some() || (o.survived && !o.output_ok))
        {
            eprintln!(
                "  pair {:4} rack {}: DIVERGED{}",
                o.pair_id,
                o.rack,
                o.error.as_deref().map(|e| format!(" ({e})")).unwrap_or_default()
            );
            if o.timeline.is_empty() {
                eprintln!(
                    "    crashed={} degraded={} reintegrated={} served={}/{}",
                    o.crashed, o.degraded, o.reintegrated, o.served, o.requests
                );
            }
            for moment in &o.timeline {
                eprintln!("    {moment}");
            }
        }
    }
    std::process::exit(if ok { 0 } else { 1 })
}

fn workload_by_name(name: &str) -> Option<Workload> {
    ftjvm::workloads::spec_suite().into_iter().find(|w| w.name == name)
}

/// Runs the workload on a k-replica group, prints the group report
/// (reigns, failovers, timeline), and exits — nonzero on an incomplete
/// group or an exactly-once violation.
fn group_main(
    w: &Workload,
    cfg: FtConfig,
    size: usize,
    vote_quorum: Option<u32>,
    kill_standby: Option<u64>,
    reintegrate: bool,
) -> ! {
    let mut cfg = cfg;
    // The group schedules kills itself: the single-pair crash flag
    // becomes the chain's first kill.
    let kills = if cfg.fault.is_armed() { vec![cfg.fault] } else { Vec::new() };
    cfg.fault = FaultPlan::None;
    let gcfg = GroupConfig {
        size,
        vote_quorum,
        kills,
        kill_standby_after_units: kill_standby.map(|units| (1, units)),
        // Groups re-recruit by default; `--reintegrate` is implied.
        reintegrate: reintegrate || GroupConfig::default().reintegrate,
        ..GroupConfig::default()
    };
    let report = FtJvm::new(w.program.clone(), cfg.clone())
        .run_group(gcfg)
        .unwrap_or_else(|e| fail("group run failed (divergence or corruption)", &e));
    println!("\ngroup [{} / {} / {}]: {} replicas", cfg.mode, cfg.lock_variant, cfg.codec, size);
    match vote_quorum {
        Some(q) => println!("  vote quorum: {q} matching digests gate every output"),
        None => println!("  vote quorum: off"),
    }
    println!(
        "  completed {}   survivor m{}   failovers {}   evictions {}",
        if report.completed { "yes" } else { "NO" },
        report.survivor,
        report.failovers.len(),
        report.evictions
    );
    for (i, r) in report.reigns.iter().enumerate() {
        println!(
            "  reign {i}: m{} — {} commits, {} flushes, {} epochs cut, {} votes sent",
            r.member,
            r.stats.output_commits,
            r.stats.flushes,
            r.stats.epochs_cut,
            r.stats.votes_sent
        );
    }
    for f in &report.failovers {
        println!(
            "  failover (reign {}): m{} promoted at {} — detection {}, suffix replay {}{}",
            f.reign,
            f.promoted,
            f.crash_at,
            f.detection_latency,
            f.suffix_replay,
            if f.demoted_by_vote { " (vote demotion)" } else { "" }
        );
    }
    println!("  timeline:");
    for m in &report.timeline {
        println!("    {m}");
    }
    println!("  console ({} lines):", report.console().len());
    for line in report.console().iter().take(12) {
        println!("    {line}");
    }
    if report.console().len() > 12 {
        println!("    … {} more", report.console().len() - 12);
    }
    if let Err(id) = report.check_no_duplicate_outputs() {
        fail("exactly-once violated", &format!("output {id} duplicated"));
    }
    std::process::exit(if report.completed { 0 } else { 1 })
}

/// A run that diverged, corrupted state, or violated exactly-once is a
/// tool failure, not a panic: report and exit nonzero.
fn fail(what: &str, detail: &dyn std::fmt::Display) -> ! {
    eprintln!("ftjvm-run: {what}: {detail}");
    std::process::exit(1)
}

fn parse_net_fault(spec: &str) -> Result<NetFaultPlan, String> {
    let mut plan = NetFaultPlan::default();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part.split_once('=').ok_or_else(|| format!("`{part}`: expected k=v"))?;
        let prob = || v.parse::<f64>().map_err(|_| format!("`{part}`: bad probability"));
        let indices = || {
            v.split(';')
                .map(|n| n.parse::<u64>().map_err(|_| format!("`{part}`: bad index")))
                .collect::<Result<Vec<u64>, String>>()
        };
        match k {
            "drop" => plan.drop = prob()?,
            "dup" => plan.duplicate = prob()?,
            "corrupt" => plan.corrupt = prob()?,
            "reorder" => plan.reorder = prob()?,
            "jitter" => {
                let us = v.parse::<u64>().map_err(|_| format!("`{part}`: bad microseconds"))?;
                plan.jitter = SimTime::from_micros(us);
            }
            "drop-at" => plan.drop_at = indices()?,
            "dup-at" => plan.duplicate_at = indices()?,
            "corrupt-at" => plan.corrupt_at = indices()?,
            "partition" => {
                let (a, b) =
                    v.split_once(':').ok_or_else(|| format!("`{part}`: expected start:end"))?;
                let a = a.parse().map_err(|_| format!("`{part}`: bad start"))?;
                let b = b.parse().map_err(|_| format!("`{part}`: bad end"))?;
                plan.partitions.push((a, b));
            }
            _ => return Err(format!("unknown key `{k}`")),
        }
    }
    if plan.reorder > 0.0 && plan.jitter == SimTime::ZERO {
        plan.jitter = SimTime::from_micros(300);
    }
    Ok(plan)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else { usage() };
    if name == "--fleet" {
        fleet_main(&args);
    }
    let Some(w) = workload_by_name(name) else {
        eprintln!("unknown workload `{name}`");
        usage()
    };
    let mut cfg = FtConfig::default();
    let mut baseline = false;
    let mut disasm = false;
    let mut disasm_fused = false;
    let mut dump_log: Option<usize> = None;
    let mut kill_backup: Option<u64> = None;
    let mut reintegrate = false;
    let mut group_size: Option<usize> = None;
    let mut vote_quorum: Option<u32> = None;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--mode" => {
                i += 1;
                cfg.mode = match args.get(i).map(String::as_str) {
                    Some("lock") => ReplicationMode::LockSync,
                    Some("ts") => ReplicationMode::ThreadSched,
                    _ => usage(),
                };
            }
            "--variant" => {
                i += 1;
                cfg.lock_variant = match args.get(i).map(String::as_str) {
                    Some("records") => ftjvm::LockVariant::PerAcquisition,
                    Some("intervals") => ftjvm::LockVariant::Intervals,
                    _ => usage(),
                };
            }
            "--codec" => {
                i += 1;
                cfg.codec = match args.get(i).map(String::as_str) {
                    Some("fixed") => ftjvm::WireCodec::Fixed,
                    Some("compact") => ftjvm::WireCodec::Compact,
                    _ => usage(),
                };
            }
            "--crash-at" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                cfg.fault = FaultPlan::AfterInstructions(n);
            }
            "--crash-before-output" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                cfg.fault = FaultPlan::BeforeOutput(n);
            }
            "--backup" => {
                i += 1;
                cfg.lag_budget = match args.get(i).map(String::as_str) {
                    Some("cold") => LagBudget::Cold,
                    Some("hot") => LagBudget::Hot,
                    _ => usage(),
                };
            }
            "--warm" => cfg.warm_backup = true,
            "--checkpoint-interval" => {
                i += 1;
                let n = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
                cfg.checkpoint_interval = Some(n);
            }
            "--kill-backup" => {
                i += 1;
                kill_backup =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--reintegrate" => reintegrate = true,
            "--group-size" => {
                i += 1;
                group_size =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--vote-quorum" => {
                i += 1;
                vote_quorum =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            "--seed" => {
                i += 1;
                cfg.primary_seed =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--threads" => {
                i += 1;
                cfg.replay_threads = parse_threads(args.get(i));
            }
            "--net-fault" => {
                i += 1;
                let spec = args.get(i).unwrap_or_else(|| usage());
                let seed = cfg.net_fault.seed;
                cfg.net_fault = parse_net_fault(spec).unwrap_or_else(|e| {
                    eprintln!("bad --net-fault spec: {e}");
                    usage()
                });
                cfg.net_fault.seed = seed;
            }
            "--net-seed" => {
                i += 1;
                cfg.net_fault.seed =
                    args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage());
            }
            "--baseline" => baseline = true,
            "--disasm" => disasm = true,
            "--disasm-fused" => disasm_fused = true,
            "--dump-log" => {
                i += 1;
                dump_log =
                    Some(args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()));
            }
            _ => usage(),
        }
        i += 1;
    }

    if disasm {
        print!("{}", ftjvm::vm::disasm::disassemble(&w.program));
        return;
    }
    if disasm_fused {
        print!("{}", ftjvm::vm::disasm::disassemble_decoded(&w.program));
        return;
    }
    if let Some(n) = dump_log {
        let records = FtJvm::new(w.program.clone(), cfg.clone())
            .capture_log()
            .unwrap_or_else(|e| fail("log capture failed", &e));
        println!(
            "{} records logged by a failure-free [{} / {} / {}] run; first {n}:",
            records.len(),
            cfg.mode,
            cfg.lock_variant,
            cfg.codec
        );
        for r in records.iter().take(n) {
            println!("  {r}");
        }
        return;
    }

    if vote_quorum.is_some() && group_size.is_none() {
        eprintln!("--vote-quorum requires --group-size");
        usage()
    }
    if let Some(size) = group_size {
        if cfg.checkpoint_interval.is_none() {
            eprintln!("--group-size requires --checkpoint-interval (state transfer grounds joins)");
            usage()
        }
        group_main(&w, cfg, size, vote_quorum, kill_backup, reintegrate);
    }

    let backup_fault = kill_backup.is_some() || reintegrate;
    if backup_fault && cfg.checkpoint_interval.is_none() {
        eprintln!("--kill-backup/--reintegrate require --checkpoint-interval");
        usage()
    }
    if backup_fault {
        // The backup-failure driver co-simulates a hot standby.
        cfg.lag_budget = LagBudget::Hot;
    }

    let harness = FtJvm::new(w.program.clone(), cfg.clone());
    println!("workload: {} — {}", w.name, w.description);
    let (base, _) = harness.run_unreplicated().unwrap_or_else(|e| fail("baseline run failed", &e));
    println!(
        "baseline: {} simulated ({} instructions, {} locks, {} native calls)",
        base.acct.total(),
        base.counters.instructions,
        base.counters.monitor_acquires,
        base.counters.native_calls
    );
    if baseline {
        return;
    }
    // (killed-at, degraded-at, live-at, reintegrated, latency) when the
    // backup-failure driver ran.
    type CkptMeta = (Option<SimTime>, Option<SimTime>, Option<SimTime>, bool, Option<SimTime>);
    let (report, ckpt_meta): (_, Option<CkptMeta>) = if backup_fault {
        let cr = harness
            .run_checkpointed(ftjvm::CheckpointPlan {
                fault: cfg.fault,
                kill_backup_after_units: kill_backup,
                reintegrate,
            })
            .unwrap_or_else(|e| fail("checkpointed run failed (divergence or corruption)", &e));
        let meta = (
            cr.backup_killed_at,
            cr.degraded_entered_at,
            cr.reintegrated_at,
            cr.reintegrated,
            cr.reintegration_latency(),
        );
        (cr.pair, Some(meta))
    } else {
        let r = harness
            .run_replicated()
            .unwrap_or_else(|e| fail("replicated run failed (divergence or corruption)", &e));
        (r, None)
    };
    report
        .check_no_duplicate_outputs()
        .unwrap_or_else(|id| fail("exactly-once violated", &format!("output {id} duplicated")));
    if report.crashed {
        // A crashed primary ran only a prefix; a ratio against the full
        // baseline would mislead.
        println!(
            "\nprimary [{} / {} / {}]: {} simulated (partial — crashed)",
            cfg.mode,
            cfg.lock_variant,
            cfg.codec,
            report.primary.acct.total(),
        );
    } else {
        println!(
            "\nprimary [{} / {} / {}]: {} simulated = {:.2}x baseline",
            cfg.mode,
            cfg.lock_variant,
            cfg.codec,
            report.primary.acct.total(),
            report.primary.acct.total().as_nanos() as f64 / base.acct.total().as_nanos() as f64
        );
    }
    for cat in Category::ALL {
        let t = report.primary.acct.get(cat);
        if t > ftjvm::netsim::SimTime::ZERO {
            println!("  {cat:14} {t}");
        }
    }
    let s = &report.primary_stats;
    println!(
        "  log: {} messages ({} lock, {} interval, {} id-map, {} sched, {} native, {} commit, {} se) \
         in {} flushes, {} bytes; {} heartbeats",
        s.messages_logged(),
        s.lock_acq_records,
        s.lock_interval_records,
        s.id_map_records,
        s.sched_records,
        s.native_result_records,
        s.output_commit_records,
        s.se_state_records,
        s.flushes,
        s.bytes_logged,
        s.heartbeats,
    );
    if cfg.checkpoint_interval.is_some() {
        println!(
            "  epochs: {} cut, {} acked; latest snapshot {} bytes ({} chunks shipped); \
             retained suffix peak {} frames / {} bytes; {} outputs committed degraded",
            s.epochs_cut,
            s.epochs_acked,
            s.snapshot_bytes,
            s.snapshot_chunks_sent,
            s.peak_suffix_frames,
            s.peak_suffix_bytes,
            s.degraded_outputs,
        );
        if let Some(bs) = &report.backup_stats {
            println!("  backup stored-log peak: {} pending records/frames", bs.peak_backup_pending);
        }
    }
    if cfg.net_fault.is_armed() {
        let c = &report.channel;
        let originals = c.messages_sent.saturating_sub(c.retransmits);
        println!(
            "  link: {} frames sent ({} original + {} retransmit, {:.1}% overhead); \
             {} dropped, {} duplicates suppressed, {} corrupt rejected, {} reordered, {} nacks",
            c.messages_sent,
            originals,
            c.retransmits,
            100.0 * c.retransmits as f64 / originals.max(1) as f64,
            c.drops,
            c.dup_deliveries,
            c.corrupted_frames,
            c.reordered,
            c.nacks,
        );
    }
    if report.crashed {
        println!("\nprimary CRASHED; {} backup took over:", cfg.lag_budget);
        println!("  detection latency:      {}", report.detection_latency);
        let replay_label = match cfg.lag_budget {
            LagBudget::Cold => "full-log replay time: ",
            LagBudget::Hot => "suffix replay time:   ",
        };
        println!("  {replay_label}  {}", report.recovery_replay_time);
        println!("  total failover latency: {}", report.failover_latency);
        let b = report.backup.as_ref().expect("backup ran");
        println!("  backup total:           {}", b.acct.total());
        report
            .check_no_duplicate_outputs()
            .unwrap_or_else(|id| fail("exactly-once violated", &format!("output {id} duplicated")));
        println!("  exactly-once output:    ok");
    } else if matches!(cfg.lag_budget, LagBudget::Hot) {
        let b = report.backup.as_ref().expect("hot standby ran");
        println!("\nhot standby streamed the whole log (no crash):");
        println!("  standby total:          {}", b.acct.total());
    }
    if let Some((killed, degraded, live, reintegrated, latency)) = ckpt_meta {
        println!("\nbackup-failure timeline:");
        match killed {
            Some(t) => println!("  backup killed at:       {t}"),
            None => println!("  backup kill never fired (run ended first)"),
        }
        if let Some(t) = degraded {
            println!("  degraded mode entered:  {t}");
        }
        if let Some(t) = live {
            println!("  replacement live at:    {t}");
        }
        println!("  re-integrated:          {}", if reintegrated { "yes" } else { "no" });
        if let Some(l) = latency {
            println!("  re-integration latency: {l}");
        }
    }
    println!("\nconsole ({} lines):", report.console().len());
    for line in report.console().iter().take(12) {
        println!("  {line}");
    }
    if report.console().len() > 12 {
        println!("  … {} more", report.console().len() - 12);
    }
}
