//! Vendored minimal stand-in for the `bytes` crate so the workspace builds
//! without network access to a registry. Implements exactly the subset the
//! workspace uses: cheaply-cloneable immutable `Bytes`, growable `BytesMut`,
//! and the little-endian `Buf`/`BufMut` accessors.
//!
//! Semantics match the real crate for this subset (panics on out-of-range
//! reads/slices, `split_to` advances the cursor, `freeze` is zero-copy).

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer (view into a shared allocation).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Buffer over a static slice (copied; the real crate borrows, but the
    /// observable behavior is identical for this workspace).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Sub-view sharing the same allocation. Panics if out of range.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of range");
        Bytes { data: self.data.clone(), start: self.start + begin, end: self.start + end }
    }

    /// Splits off and returns the first `at` bytes, advancing `self`.
    pub fn split_to(&mut self, at: usize) -> Self {
        assert!(at <= self.len(), "split_to out of range");
        let head = Bytes { data: self.data.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = v.into();
        let end = data.len();
        Bytes { data, start: 0, end }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().to_vec().into_iter()
    }
}

/// Growable byte buffer; `freeze` converts to `Bytes` without copying.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read cursor over a byte source (little-endian accessors; the subset the
/// workspace uses).
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        assert!(self.remaining() >= 1, "buffer underflow");
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    fn get_u32_le(&mut self) -> u32 {
        assert!(self.remaining() >= 4, "buffer underflow");
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        assert!(self.remaining() >= 8, "buffer underflow");
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of range");
        self.start += cnt;
    }
}

/// Write cursor appending to a byte sink (little-endian writers; the subset
/// the workspace uses).
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_views() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX);
        w.put_i64_le(-9);
        let mut b = w.freeze();
        assert_eq!(b.len(), 1 + 4 + 8 + 8);
        let head = b.split_to(1);
        assert_eq!(&head[..], &[7]);
        assert_eq!(b.clone().get_u32_le(), 0xDEAD_BEEF);
        let tail = b.slice(4..);
        assert_eq!(tail.len(), 16);
        let mut t = tail;
        assert_eq!(t.get_u64_le(), u64::MAX);
        assert_eq!(t.get_i64_le(), -9);
        assert!(t.is_empty());
    }
}
