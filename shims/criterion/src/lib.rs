//! Vendored minimal stand-in for the `criterion` crate so the workspace's
//! `harness = false` bench targets build and run without network access to
//! a registry. Behavior:
//!
//! * under `cargo bench` (cargo passes `--bench`): each benchmark runs a
//!   short timed loop and prints a mean ns/iter line;
//! * under `cargo test` (no `--bench` flag): each benchmark body runs once,
//!   acting as a smoke test — mirroring real criterion's test mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Units processed per iteration, for throughput lines.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level benchmark driver.
pub struct Criterion {
    bench_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut bench_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => bench_mode = false,
                a if !a.starts_with('-') => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Criterion { bench_mode, filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None, sample_size: 10 }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(self, &id, None, 10, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(self.criterion, &id, self.throughput, self.sample_size, f);
        self
    }

    pub fn finish(self) {}
}

fn run_one(
    criterion: &Criterion,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: impl FnMut(&mut Bencher),
) {
    if let Some(filter) = &criterion.filter {
        if !id.contains(filter.as_str()) {
            return;
        }
    }
    if !criterion.bench_mode {
        // Test mode: run the body once so `cargo test` exercises it.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b);
        println!("test {id} ... ok (bench smoke)");
        return;
    }
    // Bench mode: a few samples of a small fixed iteration count. Crude
    // next to real criterion, but stable enough to compare codecs.
    let mut best = Duration::MAX;
    let mut total_iters = 0u64;
    for _ in 0..sample_size.min(20) {
        let mut b = Bencher { iters: 3, elapsed: Duration::ZERO };
        f(&mut b);
        total_iters += b.iters;
        if b.elapsed < best {
            best = b.elapsed;
        }
    }
    let per_iter = best.as_nanos() / 3;
    let mut line = format!("bench {id:60} {per_iter:>12} ns/iter");
    if let Some(Throughput::Bytes(bytes)) = throughput {
        if per_iter > 0 {
            let mbps = bytes as f64 * 1e3 / per_iter as f64;
            line.push_str(&format!("  {mbps:>10.1} MB/s"));
        }
    }
    let _ = total_iters;
    println!("{line}");
}

/// Timing handle passed to each benchmark body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
