//! Vendored minimal stand-in for the `rand` crate so the workspace builds
//! without network access to a registry. Provides the subset the workspace
//! uses: `StdRng::seed_from_u64` and `Rng::gen_range` over half-open integer
//! ranges. The generator is SplitMix64 — deterministic per seed, which is
//! all the replica simulation requires (it never needs the real `StdRng`
//! stream, only *some* fixed stream per seed).

use std::ops::Range;

/// Seedable generator constructor (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types usable as `gen_range` arguments (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Raw 64-bit generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore + Sized {
    /// Uniform sample from a half-open range. Panics on an empty range,
    /// like the real crate.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> Rng for T {}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl StdRng {
        /// The raw generator state — lets deterministic-state snapshots
        /// capture the stream position exactly (the real crate has no such
        /// accessor, but SplitMix64's whole state is one word).
        pub fn state(&self) -> u64 {
            self.state
        }

        /// Rebuilds a generator at a previously captured [`StdRng::state`]
        /// position.
        pub fn from_state(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (public domain; Steele, Lea & Flood mix constants).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: u64 = a.gen_range(0..1000u64);
            assert_eq!(x, b.gen_range(0..1000u64));
            assert!(x < 1000);
        }
        let mut c = StdRng::seed_from_u64(7);
        let neg: i64 = c.gen_range(-50i64..50);
        assert!((-50..50).contains(&neg));
        let one: u32 = c.gen_range(0u32..1);
        assert_eq!(one, 0);
    }
}
