//! Vendored minimal stand-in for the `proptest` crate so the workspace
//! builds without network access to a registry. Implements the subset the
//! workspace's property tests use: the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros, `any::<T>()`, range / tuple / collection /
//! option / string-class strategies, and the `prop_map` / `prop_filter` /
//! `prop_flat_map` combinators.
//!
//! Differences from the real crate, deliberate for a vendored shim:
//! * **no shrinking** — a failing case reports the generated input as-is;
//! * **no persistence** — `*.proptest-regressions` files are ignored;
//! * generation is deterministic per test body (fixed seed), which keeps
//!   CI runs reproducible.

// Generator-function signatures are spelled out where they are used; the
// aliases clippy suggests would only obscure a deliberately tiny shim.
#![allow(clippy::type_complexity)]

/// Internal SplitMix64 generator used for all case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

pub mod test_runner {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Runner configuration (subset: `cases`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// Maximum strategy-level rejects (filters) tolerated per property.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_global_rejects: 1024 }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The property is violated.
        Fail(String),
        /// The input is rejected (does not count against `cases`).
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "test case rejected: {r}"),
            }
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drives a property over `cases` generated inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            // Fixed seed: deterministic, reproducible runs (no shrinking or
            // regression persistence in this shim).
            TestRunner { config, rng: TestRng::new(0xF7_1A_57_0C_5E_ED_00_01) }
        }

        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> TestCaseResult,
        ) -> Result<(), String>
        where
            S::Value: std::fmt::Debug,
        {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < self.config.cases {
                let value = strategy.generate(&mut self.rng);
                let shown = format!("{value:?}");
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            return Err("too many rejected inputs".to_string());
                        }
                    }
                    Err(TestCaseError::Fail(reason)) => {
                        let clipped = if shown.len() > 4096 { &shown[..4096] } else { &shown[..] };
                        return Err(format!(
                            "proptest: property failed after {passed} passing case(s): \
                             {reason}\ninput: {clipped}"
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A generator of random values (the real crate's `Strategy` minus
    /// shrinking; `Value` keeps the same associated-type name so
    /// `impl Strategy<Value = T>` bounds are source-compatible).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence: whence.into(), f }
        }

        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type (used by `prop_oneof!`).
        fn into_gen_fn(self) -> Box<dyn Fn(&mut TestRng) -> Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(move |rng| self.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("proptest shim: filter '{}' rejected 1024 consecutive inputs", self.whence);
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Union<V> {
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            (self.arms[idx])(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + v) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u128;
                    let v = (rng.next_u64() as u128 % span) as i128;
                    (lo + v) as $ty
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// `&'static str` as a strategy: a `[chars]{m,n}` character-class
    /// pattern (the only regex shape the workspace uses).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, min, max) = parse_class_pattern(self)
                .unwrap_or_else(|| panic!("proptest shim: unsupported string pattern {self:?}"));
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
        }
    }

    /// Parses `[class]{m,n}` into (alphabet, m, n). Returns `None` on any
    /// shape this shim does not support.
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (m, n) = match counts.split_once(',') {
            Some((m, n)) => (m.trim().parse().ok()?, n.trim().parse().ok()?),
            None => {
                let k = counts.trim().parse().ok()?;
                (k, k)
            }
        };
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (lo, hi) = (class[i] as u32, class[i + 2] as u32);
                if lo > hi {
                    return None;
                }
                for c in lo..=hi {
                    alphabet.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() || m > n {
            return None;
        }
        Some((alphabet, m, n))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn class_patterns_parse() {
            let (a, m, n) = parse_class_pattern("[a-c_]{0,4}").unwrap();
            assert_eq!(a, vec!['a', 'b', 'c', '_']);
            assert_eq!((m, n), (0, 4));
            let (a, ..) = parse_class_pattern("[ -~]{0,40}").unwrap();
            assert_eq!(a.len(), 95); // printable ASCII
            let (a, ..) = parse_class_pattern("[a-zA-Z0-9 /._-]{0,48}").unwrap();
            assert!(a.contains(&'-') && a.contains(&'/') && a.contains(&' '));
        }

        #[test]
        fn string_strategy_respects_bounds() {
            let mut rng = TestRng::new(1);
            for _ in 0..200 {
                let s = "[a-z]{2,5}".generate(&mut rng);
                assert!((2..=5).contains(&s.len()), "{s:?}");
                assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            }
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        fn generate_any(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by `any::<T>()`.
    pub struct AnyStrategy<T>(std::marker::PhantomData<fn() -> T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::generate_any(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn generate_any(rng: &mut TestRng) -> $ty {
                    // Bias toward small magnitudes half the time: interesting
                    // boundary-ish values show up far more often than with
                    // raw 64-bit noise.
                    let raw = rng.next_u64();
                    if raw & 1 == 0 {
                        (raw >> 1) as $ty
                    } else {
                        ((raw >> 1) % 257) as $ty
                    }
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn generate_any(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn generate_any(rng: &mut TestRng) -> f64 {
            // Mix raw bit patterns (hits NaN/inf/subnormals) with tame
            // magnitudes so filtered-finite strategies converge quickly.
            let raw = rng.next_u64();
            if raw & 3 == 0 {
                f64::from_bits(rng.next_u64())
            } else {
                (rng.next_u64() as i64 % 1_000_000_007) as f64 / 97.0
            }
        }
    }

    impl Arbitrary for char {
        fn generate_any(rng: &mut TestRng) -> char {
            char::from_u32((rng.next_u64() % 0xD800) as u32).unwrap_or('a')
        }
    }

    impl Arbitrary for super::sample::Index {
        fn generate_any(rng: &mut TestRng) -> super::sample::Index {
            super::sample::Index::new(rng.next_u64() as usize)
        }
    }
}

pub mod sample {
    /// A position scaled into any collection length at use time.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        pub fn new(raw: usize) -> Self {
            Index(raw)
        }

        /// Maps this index into `[0, len)`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A size requirement for generated collections.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector of `element` values with a
    /// length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of`: `None` about a quarter of the time.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use super::arbitrary::{any, Arbitrary};
    pub use super::strategy::{Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use super::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of the real prelude's `prop` shorthand module.
    pub mod prop {
        pub use super::super::{collection, option, sample, strategy};
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                let outcome = runner.run(&strategy, |($($arg,)+)| {
                    $body
                    ::core::result::Result::Ok(())
                });
                if let ::core::result::Result::Err(message) = outcome {
                    panic!("{}", message);
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        // Weights are ignored: the shim picks arms uniformly.
        $crate::prop_oneof![$($arm),+]
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::into_gen_fn($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} ({:?} vs {:?})", format!($($fmt)*), left, right),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}
