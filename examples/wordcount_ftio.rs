//! Fault-tolerant file I/O: a word-count job writes its input file,
//! re-reads it in chunks, counts words, appends a report line per pass —
//! while the primary is killed at the nastiest points in the output-commit
//! protocol (right before and right after file writes). The side-effect
//! handlers (paper §4.4) recover the volatile open-file state (descriptors
//! and offsets) and the testable-output machinery keeps every write
//! exactly-once.
//!
//! Run: `cargo run --example wordcount_ftio`

use ftjvm::netsim::FaultPlan;
use ftjvm::vm::program::ProgramBuilder;
use ftjvm::vm::{Cmp, Program};
use ftjvm::{FtConfig, FtJvm, ReplicationMode};
use std::sync::Arc;

fn build_wordcount() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let fopen = b.import_native("file.open", 1, true);
    let fwrite = b.import_native("file.write", 3, true);
    let fseek = b.import_native("file.seek", 2, false);
    let fread = b.import_native("file.read", 3, true);
    let fsize = b.import_native("file.size", 1, true);
    let fclose = b.import_native("file.close", 1, false);
    let input = b.intern("corpus.txt");
    let text = b.intern("the quick brown fox jumps over the lazy dog\n");
    let report = b.intern("report.txt");
    let line = b.intern("pass-count\n");

    let mut m = b.method("main", 1);
    // locals: 1=in fd, 2=report fd, 3=i, 4=buf, 5=n, 6=words, 7=prev_space, 8=j, 9=byte
    // Write the corpus: 12 copies of the sentence.
    m.const_str(input).invoke_native(fopen, 1).store(1);
    let wdone = m.new_label();
    m.push_i(0).store(3);
    let wtop = m.bind_new_label();
    m.load(3).push_i(12).icmp(Cmp::Ge).if_true(wdone);
    m.load(1).const_str(text).dup().alen().invoke_native(fwrite, 3).pop();
    m.inc(3, 1).goto(wtop);
    m.bind(wdone);
    // Open the report file.
    m.const_str(report).invoke_native(fopen, 1).store(2);
    // Three passes: each seeks to 0, streams the corpus in 32-byte chunks,
    // counts word starts, prints the count, and appends a report line.
    m.push_i(0).store(3);
    let passes_done = m.new_label();
    let pass_top = m.bind_new_label();
    m.load(3).push_i(3).icmp(Cmp::Ge).if_true(passes_done);
    {
        m.load(1).push_i(0).invoke_native(fseek, 2);
        m.push_i(32).new_array().store(4);
        m.push_i(0).store(6);
        m.push_i(1).store(7); // prev is "space" at start
        let eof = m.new_label();
        let chunk = m.bind_new_label();
        m.load(1).load(4).push_i(32).invoke_native(fread, 3).store(5);
        m.load(5).if_not(eof);
        let scanned = m.new_label();
        m.push_i(0).store(8);
        let scan = m.bind_new_label();
        m.load(8).load(5).icmp(Cmp::Ge).if_true(scanned);
        m.load(4).load(8).aload().store(9);
        {
            // word start = non-space after space
            let is_space = m.new_label();
            let next = m.new_label();
            m.load(9).push_i(32).icmp(Cmp::Eq).if_true(is_space);
            m.load(9).push_i(10).icmp(Cmp::Eq).if_true(is_space);
            m.load(7).if_not(next);
            m.inc(6, 1);
            m.push_i(0).store(7);
            m.goto(next);
            m.bind(is_space);
            m.push_i(1).store(7);
            m.bind(next);
        }
        m.inc(8, 1).goto(scan);
        m.bind(scanned);
        m.goto(chunk);
        m.bind(eof);
        m.load(6).invoke_native(print, 1);
        m.load(2).const_str(line).dup().alen().invoke_native(fwrite, 3).pop();
    }
    m.inc(3, 1).goto(pass_top);
    m.bind(passes_done);
    // Final: print both file sizes.
    m.load(1).invoke_native(fsize, 1).invoke_native(print, 1);
    m.load(2).invoke_native(fsize, 1).invoke_native(print, 1);
    m.load(1).invoke_native(fclose, 1);
    m.load(2).invoke_native(fclose, 1);
    m.ret_void();
    let entry = m.build(&mut b);
    Arc::new(b.build(entry).expect("wordcount verifies"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_wordcount();
    let expected_corpus_len = 44 * 12; // sentence length × copies
    let expected_report_len = 11 * 3; // "pass-count\n" × passes
    let mut crashes_exercised = 0;
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        println!("== {mode} ==");
        // Sweep crashes across every output commit (writes + prints) and a
        // few instruction counts.
        let mut faults: Vec<FaultPlan> = (0..20).map(FaultPlan::BeforeOutput).collect();
        faults.extend((0..20).map(FaultPlan::AfterOutput));
        faults.extend([1_000u64, 5_000, 20_000].map(FaultPlan::AfterInstructions));
        for fault in faults {
            let cfg = FtConfig { mode, fault, ..FtConfig::default() };
            let rep = FtJvm::new(program.clone(), cfg).run_with_failure()?;
            if rep.crashed {
                crashes_exercised += 1;
            }
            // Word counts: 9 words × 12 copies = 108, three times; then the
            // two file sizes.
            let expected: Vec<String> = vec![
                "108".into(),
                "108".into(),
                "108".into(),
                expected_corpus_len.to_string(),
                expected_report_len.to_string(),
            ];
            assert_eq!(rep.console(), expected, "{mode} {fault:?}");
            rep.check_no_duplicate_outputs().expect("exactly-once");
            let world = rep.world.borrow();
            assert_eq!(world.file("corpus.txt").unwrap().len(), expected_corpus_len);
            assert_eq!(world.file("report.txt").unwrap().len(), expected_report_len);
            assert_eq!(&world.file("report.txt").unwrap()[..11], b"pass-count\n");
        }
        println!("  43 fault plans exercised, file contents exact every time ✓");
    }
    println!("\n{crashes_exercised} actual crashes recovered with exact file state ✓");
    Ok(())
}
