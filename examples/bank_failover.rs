//! A multithreaded "bank": three teller threads move money between
//! accounts through synchronized methods while an auditor thread
//! periodically prints the total. The primary is killed mid-run at several
//! points under *both* replication techniques; conservation of money and
//! exactly-once audit output must survive every failover.
//!
//! Run: `cargo run --example bank_failover`

use ftjvm::netsim::FaultPlan;
use ftjvm::vm::class::builtin;
use ftjvm::vm::program::ProgramBuilder;
use ftjvm::vm::{Cmp, Program};
use ftjvm::{FtConfig, FtJvm, ReplicationMode};
use std::sync::Arc;

const ACCOUNTS: i64 = 8;
const TRANSFERS_PER_TELLER: i64 = 120;
const TOTAL: i64 = ACCOUNTS * 1000;

fn build_bank() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    // Bank: statics 0=balances array, 1=tellers done, 2=transfers done.
    let bank = b.add_class("Bank", builtin::OBJECT, 0, 3);

    // transfer(from, to, amount): synchronized on the bank.
    let mut transfer = b.method("Bank.transfer", 3);
    transfer.static_of(bank).synchronized();
    {
        let m = &mut transfer;
        // balances[from] -= amount
        m.get_static(bank, 0).load(0);
        m.get_static(bank, 0).load(0).aload().load(2).sub();
        m.astore();
        // balances[to] += amount
        m.get_static(bank, 0).load(1);
        m.get_static(bank, 0).load(1).aload().load(2).add();
        m.astore();
        m.get_static(bank, 2).push_i(1).add().put_static(bank, 2);
        m.ret_void();
    }
    let transfer = transfer.build(&mut b);

    // audit() -> total: synchronized scan.
    let mut audit = b.method("Bank.audit", 1);
    audit.static_of(bank).synchronized();
    {
        let m = &mut audit;
        m.push_i(0).store(1);
        m.push_i(0).store(2);
        let done = m.new_label();
        let top = m.bind_new_label();
        m.load(2).push_i(ACCOUNTS).icmp(Cmp::Ge).if_true(done);
        m.get_static(bank, 0).load(2).aload().load(1).add().store(1);
        m.inc(2, 1).goto(top);
        m.bind(done);
        m.load(1).ret_val();
    }
    let audit = audit.build(&mut b);

    // teller(id): deterministic transfer pattern derived from its id.
    let mut teller = b.method("teller", 1);
    {
        let m = &mut teller;
        // locals: 0=id, 1=i, 2=from, 3=to
        let done = m.new_label();
        m.push_i(0).store(1);
        let top = m.bind_new_label();
        m.load(1).push_i(TRANSFERS_PER_TELLER).icmp(Cmp::Ge).if_true(done);
        // from = (i*3 + id) % A ; to = (i*5 + id*2 + 1) % A
        m.load(1).push_i(3).mul().load(0).add().push_i(ACCOUNTS).rem().store(2);
        m.load(1)
            .push_i(5)
            .mul()
            .load(0)
            .push_i(2)
            .mul()
            .add()
            .push_i(1)
            .add()
            .push_i(ACCOUNTS)
            .rem()
            .store(3);
        m.load(2).load(3).push_i(7).invoke(transfer);
        m.inc(1, 1).goto(top);
        m.bind(done);
        // Mark done (synchronized).
        m.class_obj(bank).monitor_enter();
        m.get_static(bank, 1).push_i(1).add().put_static(bank, 1);
        m.class_obj(bank).monitor_exit();
        m.ret_void();
    }
    let teller = teller.build(&mut b);

    // main: seed accounts, spawn 3 tellers, audit while waiting, print
    // final audit + transfer count.
    let mut m = b.method("main", 1);
    {
        m.push_i(ACCOUNTS).new_array().put_static(bank, 0);
        let seeded = m.new_label();
        m.push_i(0).store(1);
        let seed_top = m.bind_new_label();
        m.load(1).push_i(ACCOUNTS).icmp(Cmp::Ge).if_true(seeded);
        m.get_static(bank, 0).load(1).push_i(1000).astore();
        m.inc(1, 1).goto(seed_top);
        m.bind(seeded);
        m.push_i(0).put_static(bank, 1);
        m.push_i(0).put_static(bank, 2);
        for id in 0..3 {
            m.push_method(teller).push_i(id).invoke_native(spawn, 2);
        }
        // Periodic audits while the tellers run (each is an output commit).
        let all_done = m.new_label();
        let wait_top = m.bind_new_label();
        m.get_static(bank, 1).push_i(3).icmp(Cmp::Eq).if_true(all_done);
        m.push_i(0).invoke(audit).invoke_native(print, 1);
        for _ in 0..40 {
            m.invoke_native(yield_n, 0);
        }
        m.goto(wait_top);
        m.bind(all_done);
        m.push_i(0).invoke(audit).invoke_native(print, 1);
        m.get_static(bank, 2).invoke_native(print, 1);
        m.ret_void();
    }
    let entry = m.build(&mut b);
    Arc::new(b.build(entry).expect("bank verifies"))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_bank();
    for mode in [ReplicationMode::LockSync, ReplicationMode::ThreadSched] {
        println!("== {mode} ==");
        // Reference: this mode's own failure-free run.
        let free = FtJvm::new(program.clone(), FtConfig { mode, ..FtConfig::default() })
            .run_replicated()?;
        for fault in [
            FaultPlan::AfterInstructions(2_000),
            FaultPlan::AfterInstructions(8_000),
            FaultPlan::BeforeOutput(2),
            FaultPlan::AfterOutput(4),
        ] {
            let cfg = FtConfig { mode, fault, ..FtConfig::default() };
            let report = FtJvm::new(program.clone(), cfg).run_with_failure()?;
            let console = report.console();
            // Every audit that ran to completion must conserve money, and
            // the transfer count must be exact.
            let n = console.len();
            assert_eq!(console[n - 2], TOTAL.to_string(), "money conserved across failover");
            assert_eq!(console[n - 1], (3 * TRANSFERS_PER_TELLER).to_string());
            for line in &console[..n - 1] {
                assert_eq!(line.parse::<i64>()?, TOTAL, "mid-run audit conserved money");
            }
            report.check_no_duplicate_outputs().expect("exactly-once audits");
            // The *number* of interim audits is scheduling-dependent: after
            // the crash the backup is the new authority and its wait loop
            // may poll a different number of times — a perfectly valid
            // execution. What must hold is that every audit (primary's and
            // backup's alike) sees conserved books, checked above.
            assert!(
                console.len() >= 2 && free.console().len() >= 2,
                "both runs audited at least once"
            );
            println!(
                "  {fault:?}: crashed={} audits={} all conserve {TOTAL} ✓",
                report.crashed,
                console.len() - 1
            );
        }
    }
    println!("\nbank survives every injected crash with exact books ✓");
    Ok(())
}
