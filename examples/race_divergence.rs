//! The paper's Figure 1 scenario, live: a program with a data race (an
//! unguarded check on shared data that changes the lock-acquisition
//! sequence). Under **replicated thread scheduling** (restriction R4B) the
//! backup reproduces the primary's exact interleaving, races included.
//! Under **replicated lock synchronization** (which assumes R4A — no data
//! races) the replay can diverge; the authors had to remove such races
//! from the JRE *by hand*. Our implementation detects the divergence
//! instead of silently corrupting state.
//!
//! Run: `cargo run --example race_divergence`

use ftjvm::netsim::FaultPlan;
use ftjvm::vm::class::builtin;
use ftjvm::vm::program::ProgramBuilder;
use ftjvm::vm::{Cmp, Program, VmError};
use ftjvm::{FtConfig, FtJvm, ReplicationMode};
use std::sync::Arc;

/// Three workers do an unguarded read-modify-write on a shared counter and
/// call a synchronized method only when the (racy) counter is even — the
/// Figure 1 pattern: the race changes how often the lock is taken.
fn build_racy() -> Arc<Program> {
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let spawn = b.import_native("sys.spawn", 2, false);
    let yield_n = b.import_native("sys.yield", 0, false);
    let cls = b.add_class("Racy", builtin::OBJECT, 0, 2);
    let mut fin = b.method("finish", 1);
    fin.static_of(cls).synchronized();
    fin.get_static(cls, 1).push_i(1).add().put_static(cls, 1).ret_void();
    let fin = fin.build(&mut b);
    let mut guarded = b.method("guarded", 1);
    guarded.static_of(cls).synchronized();
    guarded.ret_void();
    let guarded = guarded.build(&mut b);
    let mut w = b.method("worker", 1);
    let done = w.new_label();
    w.push_i(60).store(1);
    let top = w.bind_new_label();
    w.load(1).if_not(done);
    // Unguarded RMW with a widened window.
    w.get_static(cls, 0).store(2);
    w.load(2).push_i(3).mul().push_i(7).rem().pop();
    w.load(2).push_i(1).add().put_static(cls, 0);
    // if (count % 2 == 0) guarded();   <-- Figure 1's unprotected guard
    let skip = w.new_label();
    w.get_static(cls, 0).push_i(2).rem().if_true(skip);
    w.push_i(0).invoke(guarded);
    w.bind(skip);
    w.inc(1, -1).goto(top);
    w.bind(done).push_i(0).invoke(fin).ret_void();
    let w = w.build(&mut b);
    let mut m = b.method("main", 1);
    m.push_i(0).put_static(cls, 0);
    m.push_i(0).put_static(cls, 1);
    for _ in 0..3 {
        m.push_method(w).push_i(0).invoke_native(spawn, 2);
    }
    let wait = m.bind_new_label();
    let ready = m.new_label();
    m.get_static(cls, 1).push_i(3).icmp(Cmp::Eq).if_true(ready);
    m.invoke_native(yield_n, 0).goto(wait);
    m.bind(ready);
    m.get_static(cls, 0).invoke_native(print, 1).ret_void();
    let entry = m.build(&mut b);
    Arc::new(b.build(entry).expect("racy program verifies"))
}

fn cfg(mode: ReplicationMode, seed: u64) -> FtConfig {
    let mut c = FtConfig { mode, ..FtConfig::default() };
    c.primary_seed = seed;
    c.backup_seed = seed.wrapping_mul(7919) ^ 0x5A5A;
    c.vm.quantum = 13;
    c.vm.quantum_jitter = 11;
    c.vm.max_units = 3_000_000;
    c.flush_threshold = 0;
    c.fault = FaultPlan::BeforeOutput(0);
    c
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_racy();

    // Step 0 — the workflow the paper recommends: verify R4A with an
    // Eraser-style race detector *before* trusting the program to
    // replicated lock synchronization ("Data race detection mechanisms
    // could also be used to verify R4A holds for a given program").
    println!("== R4A verification (Eraser-style lockset detector) ==");
    {
        use ftjvm::vm::env::{SimEnv, World};
        use ftjvm::vm::exec::{Vm, VmConfig};
        use ftjvm::vm::{NativeRegistry, NoopCoordinator};
        let world = World::shared();
        let env = SimEnv::new("verify", world, ftjvm::netsim::SimTime::ZERO, 1);
        let vmcfg =
            VmConfig { race_detect: true, quantum: 23, quantum_jitter: 17, ..VmConfig::default() };
        let mut vm = Vm::new(program.clone(), NativeRegistry::with_builtins(), env, vmcfg)?;
        let report = vm.run(&mut NoopCoordinator::new())?;
        for r in &report.races {
            println!("  {r}");
        }
        println!(
            "  verdict: {} — lock-sync replication is {} for this program
",
            if report.races.is_empty() { "race-free" } else { "RACY" },
            if report.races.is_empty() { "safe" } else { "UNSAFE" },
        );
        assert!(!report.races.is_empty(), "the demo program is racy by construction");
    }

    println!("== replicated thread scheduling (R4B): races are masked ==");
    for seed in [3u64, 11, 29, 71] {
        let free = {
            let mut c = cfg(ReplicationMode::ThreadSched, seed);
            c.fault = FaultPlan::None;
            FtJvm::new(program.clone(), c).run_replicated()?
        };
        let rep = FtJvm::new(program.clone(), cfg(ReplicationMode::ThreadSched, seed))
            .run_with_failure()?;
        assert_eq!(rep.console(), free.console());
        println!(
            "  seed {seed:>3}: primary's racy count {:?} reproduced exactly by the backup ✓",
            free.console()
        );
    }

    println!("\n== replicated lock synchronization (assumes R4A): races break replay ==");
    let mut detected = 0;
    let mut lucky = 0;
    for seed in 0..20u64 {
        let free = {
            let mut c = cfg(ReplicationMode::LockSync, seed);
            c.fault = FaultPlan::None;
            match FtJvm::new(program.clone(), c).run_replicated() {
                Ok(r) => r.console(),
                Err(_) => continue,
            }
        };
        match FtJvm::new(program.clone(), cfg(ReplicationMode::LockSync, seed)).run_with_failure() {
            Err(VmError::ReplayDivergence { detail, .. }) => {
                detected += 1;
                println!("  seed {seed:>3}: divergence DETECTED — {detail}");
            }
            Err(VmError::Deadlock { .. }) | Err(VmError::InstructionBudget) => {
                detected += 1;
                println!("  seed {seed:>3}: replay stalled (divergence detected as livelock)");
            }
            Err(e) => return Err(e.into()),
            Ok(rep) if rep.console() != free => {
                detected += 1;
                println!(
                    "  seed {seed:>3}: SILENT divergence — primary said {:?}, backup said {:?}",
                    free,
                    rep.console()
                );
            }
            Ok(_) => {
                lucky += 1;
            }
        }
    }
    println!(
        "\n{detected}/20 seeds diverged under lock-sync ({lucky} got lucky) — \
         this is why the paper imposes R4A (and why the authors had to fix the JRE's races by hand)"
    );
    assert!(detected > 0, "the race should break lock-sync replay for some seed");
    Ok(())
}
