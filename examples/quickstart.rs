//! Quickstart: make an ordinary program fault-tolerant, crash the primary,
//! and watch the backup finish the job with exactly-once output.
//!
//! Run: `cargo run --example quickstart`

use ftjvm::netsim::FaultPlan;
use ftjvm::vm::program::ProgramBuilder;
use ftjvm::{FtConfig, FtJvm, ReplicationMode};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write a program against the VM's assembler: compute the first ten
    //    triangular numbers and print each one.
    let mut b = ProgramBuilder::new();
    let print = b.import_native("sys.print_int", 1, false);
    let mut m = b.method("main", 1);
    let done = m.new_label();
    m.push_i(1).store(1); // i
    m.push_i(0).store(2); // acc
    let top = m.bind_new_label();
    m.load(1).push_i(10).icmp(ftjvm::vm::Cmp::Gt).if_true(done);
    m.load(2).load(1).add().store(2);
    m.load(2).invoke_native(print, 1);
    m.inc(1, 1).goto(top);
    m.bind(done).ret_void();
    let entry = m.build(&mut b);
    let program = Arc::new(b.build(entry)?);

    // 2. Wrap it in the fault-tolerance harness. Nothing in the program
    //    knows about replication — that is the paper's whole point.
    //    The fault plan kills the primary right after its 4th output.
    let cfg = FtConfig {
        mode: ReplicationMode::LockSync,
        fault: FaultPlan::AfterOutput(3),
        ..FtConfig::default()
    };
    let report = FtJvm::new(program, cfg).run_with_failure()?;

    // 3. The environment saw every output exactly once: four from the
    //    primary, six from the recovered backup.
    println!("primary crashed:   {}", report.crashed);
    println!("detection latency: {}", report.detection_latency);
    println!("console output:    {:?}", report.console());
    report.check_no_duplicate_outputs().expect("exactly-once output");
    assert_eq!(report.console(), vec!["1", "3", "6", "10", "15", "21", "28", "36", "45", "55"]);
    println!("\nevery output delivered exactly once across the failover ✓");
    Ok(())
}
